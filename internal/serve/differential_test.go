package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/db"
	"repro/internal/model"
)

// chainWorld is a parent chain p000→p001→…→p(n-1) with the grandparent
// theory — testWorld at an arbitrary size, so differential runs have
// enough distinct examples to force real eviction churn.
func chainWorld(t testing.TB, n int) (*db.Database, *model.Artifact) {
	t.Helper()
	s := db.NewSchema()
	if err := s.Add("parent", "a", "b"); err != nil {
		t.Fatal(err)
	}
	d := db.New(s)
	for i := 0; i < n-1; i++ {
		if err := d.Insert("parent", person(i), person(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	art := &model.Artifact{
		Version:     model.Version,
		Target:      "gp",
		TargetAttrs: []string{"x", "z"},
		Theory:      "gp(X,Z) :- parent(X,Y), parent(Y,Z).",
		Bias: "parent(person,person)\n" +
			"gp(person,person)\n" +
			"parent(+,-)\n" +
			"parent(-,+)\n",
		Bottom:            model.BottomConfig{Strategy: "Naive", Depth: 2, SampleSize: 20, MaxLiterals: 400, Seed: 1},
		Subsume:           model.SubsumeConfig{MaxNodes: 5000, Seed: 1},
		SchemaFingerprint: model.Fingerprint(s, "gp", []string{"x", "z"}),
	}
	return d, art
}

// chainExamples returns a mixed stream over the chain: grandparents
// (covered), parents and far hops (not), shuffled with repeats so the
// cache sees reuse, scans, and churn.
func chainExamples(t testing.TB, rng *rand.Rand, people, count int) []Example {
	t.Helper()
	out := make([]Example, count)
	for i := range out {
		a := rng.Intn(people - 4)
		hop := 1 + rng.Intn(4) // 1..4: parent, grandparent, and beyond
		e, err := parseGround(fmt.Sprintf("gp(%s,%s)", person(a), person(a+hop)))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = e
	}
	return out
}

// TestCachedUncachedDifferential pins the tentpole's correctness claim:
// admission, eviction, singleflight, and memoization can shift COST but
// never a VERDICT. A cached model under randomized starvation-level
// byte budgets (plus a churning memo) must agree bit-for-bit with the
// uncached reference engine on an identical randomized stream.
func TestCachedUncachedDifferential(t *testing.T) {
	const people = 40
	d, art := chainWorld(t, people)
	ref, err := Bind(context.Background(), "gp-ref", art, d, Options{Workers: 1, Uncached: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		// Budgets from "rejects everything" through "holds a few entries";
		// memo capacities from constant churn to comfortable.
		opts := Options{
			Workers:    1 + rng.Intn(4),
			CacheBytes: 1 + int64(rng.Intn(64*1024)),
			MemoLimit:  1 + rng.Intn(32),
		}
		cached, err := Bind(context.Background(), "gp", art, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		stream := chainExamples(t, rng, people, 300)
		want, err := ref.PredictBatch(context.Background(), stream)
		if err != nil {
			t.Fatal(err)
		}
		// Point predictions interleaved with batches, so entries built by
		// one path serve the other.
		got := make([]bool, len(stream))
		for start := 0; start < len(stream); {
			if start%3 == 0 {
				v, err := cached.PredictExample(context.Background(), stream[start])
				if err != nil {
					t.Fatal(err)
				}
				got[start] = v
				start++
				continue
			}
			end := start + 50
			if end > len(stream) {
				end = len(stream)
			}
			vs, err := cached.PredictBatch(context.Background(), stream[start:end])
			if err != nil {
				t.Fatal(err)
			}
			copy(got[start:], vs)
			start = end
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (budget=%d memo=%d): %s: cached=%v uncached=%v",
					trial, opts.CacheBytes, opts.MemoLimit, stream[i].String(), got[i], want[i])
			}
		}
	}
}

// TestConcurrentMixedModelTraffic hammers two differently budgeted
// models through the registry from many goroutines (run under -race in
// CI): every verdict must match the uncached reference regardless of
// interleaving, eviction pressure, or singleflight sharing.
func TestConcurrentMixedModelTraffic(t *testing.T) {
	const people = 40
	d, art := chainWorld(t, people)
	ref, err := Bind(context.Background(), "gp-ref", art, d, Options{Workers: 1, Uncached: true})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	names := []string{"tiny", "roomy"}
	for i, opts := range []Options{
		{Workers: 2, CacheBytes: 1, MemoLimit: 1},       // everything rebuilds
		{Workers: 2, CacheBytes: 1 << 20, MemoLimit: 0}, // everything sticks
	} {
		m, err := Bind(context.Background(), names[i], art, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		reg.Add(m)
	}

	rng := rand.New(rand.NewSource(11))
	stream := chainExamples(t, rng, people, 120)
	want, err := ref.PredictBatch(context.Background(), stream)
	if err != nil {
		t.Fatal(err)
	}
	wantFor := make(map[string]bool, len(stream))
	for i, e := range stream {
		wantFor[e.String()] = want[i]
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for iter := 0; iter < 20; iter++ {
				name := names[rng.Intn(len(names))]
				start := rng.Intn(len(stream) - 10)
				batch := stream[start : start+1+rng.Intn(10)]
				got, _, err := reg.Predict(context.Background(), name, batch)
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d model %s: %w", g, name, err)
					return
				}
				for i, e := range batch {
					if got[i] != wantFor[e.String()] {
						errCh <- fmt.Errorf("goroutine %d model %s: %s: got %v want %v",
							g, name, e.String(), got[i], wantFor[e.String()])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
