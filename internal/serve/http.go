package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"repro/internal/httpx"
	"repro/internal/metrics"
)

// ServerOptions configures the HTTP layer.
type ServerOptions struct {
	// MaxConcurrent bounds in-flight predict requests across all models;
	// <=0 selects 64. Excess requests queue on the semaphore and respect
	// their context. (Per-model budgets — Options.ModelConcurrency — shed
	// instead of queueing; this global bound protects the process.)
	MaxConcurrent int
	// MaxBatch bounds examples per predict request; <=0 selects 4096.
	// Larger batches are rejected with 413 before any work is done.
	MaxBatch int
	// RequestTimeout bounds one predict request end to end; <=0 selects
	// 30s. The deadline threads through the engine, so a slow
	// subsumption search is interrupted mid-test, not at a boundary.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown; <=0 selects 10s.
	DrainTimeout time.Duration
	// Reload, when non-nil, backs POST /admin/reload (typically a closure
	// over ReloadDir). Absent, the endpoint answers 501.
	Reload func(ctx context.Context) (*ReloadReport, error)
	// Metrics, when non-nil, backs the /metrics endpoint and receives
	// request counters.
	Metrics *metrics.Collector
}

func (o ServerOptions) normalized() ServerOptions {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	return o
}

// Server serves a registry over HTTP/JSON. The shared middleware —
// structured error bodies, the global concurrency semaphore, graceful
// drain — comes from internal/httpx, the substrate this layer and the
// shard-worker service are both built on.
type Server struct {
	reg  *Registry
	opts ServerOptions
	lim  *httpx.Limiter
	mux  *http.ServeMux

	// draining flips when graceful shutdown begins; reloading counts
	// in-flight reload sweeps. Both gate readiness: /readyz answers 503
	// while either is set, so load balancers stop routing before the
	// listener actually closes, and health checks see model rebinds.
	draining  atomic.Bool
	reloading atomic.Int32
}

// NewServer wires the registry's handlers onto one mux: liveness and
// readiness, model listing and inspection, prediction, hot reload, a
// JSON metrics snapshot, and the standard pprof endpoints (same mux,
// same port — one process, one observability surface).
func NewServer(reg *Registry, opts ServerOptions) *Server {
	opts = opts.normalized()
	s := &Server{
		reg:  reg,
		opts: opts,
		lim:  httpx.NewLimiter(opts.MaxConcurrent),
		mux:  http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleModel)
	s.mux.HandleFunc("POST /v1/models/{name}/predict", s.handlePredict)
	s.mux.HandleFunc("POST /admin/reload", s.handleReload)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's mux, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts on ln until ctx is cancelled, then drains gracefully:
// readiness flips to 503 the moment the drain begins, and in-flight
// requests get DrainTimeout to finish. A clean drain returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	return httpx.Serve(ctx, ln, s.mux, s.opts.DrainTimeout, func() { s.draining.Store(true) })
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Error codes carried in structured error bodies — aliases of the
// shared httpx vocabulary, kept here so existing callers keep compiling.
const (
	ErrCodeBadRequest    = httpx.ErrCodeBadRequest
	ErrCodeModelNotFound = httpx.ErrCodeModelNotFound
	ErrCodeBatchTooLarge = httpx.ErrCodeBatchTooLarge
	ErrCodeOverloaded    = httpx.ErrCodeOverloaded
	ErrCodeTimeout       = httpx.ErrCodeTimeout
	ErrCodeCancelled     = httpx.ErrCodeCancelled
	ErrCodeInternal      = httpx.ErrCodeInternal
	ErrCodeReload        = httpx.ErrCodeReload
	ErrCodeUnsupported   = httpx.ErrCodeUnsupported
	ErrCodeNotReady      = httpx.ErrCodeNotReady
)

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	httpx.WriteJSON(w, status, v)
}

// fail writes a structured error and counts it.
func (s *Server) fail(w http.ResponseWriter, status int, code string, err error) {
	s.opts.Metrics.Inc(metrics.ServeErrors)
	httpx.Fail(w, status, code, err)
}

// handleHealth is liveness: the process is up and can answer HTTP. It
// stays 200 through reloads and drain — only process death fails it.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": s.reg.Len()})
}

// modelBindState is one model's entry in the readiness report.
type modelBindState struct {
	Name     string `json:"name"`
	Version  int    `json:"version"`
	Clauses  int    `json:"clauses"`
	Degraded bool   `json:"degraded,omitempty"`
	InFlight int    `json:"in_flight"`
}

// handleReady is readiness: 200 only when the server can take traffic.
// It fails (503 + Retry-After) while draining or while a reload sweep
// is rebinding models, and always reports per-model bind state so
// orchestrators see what is actually being served.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	states := make([]modelBindState, 0, s.reg.Len())
	for _, name := range s.reg.Names() {
		m, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		states = append(states, modelBindState{
			Name:     m.Name(),
			Version:  m.Version(),
			Clauses:  m.def.Len(),
			Degraded: m.art.Degraded,
			InFlight: m.InFlight(),
		})
	}
	body := map[string]any{"models": states}
	switch {
	case s.draining.Load():
		body["status"] = "draining"
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable, body)
	case s.reloading.Load() > 0:
		body["status"] = "reloading"
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		body["status"] = "ready"
		s.writeJSON(w, http.StatusOK, body)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.opts.Metrics.Snapshot())
}

// modelInfo is the public description of one bound model.
type modelInfo struct {
	Name        string   `json:"name"`
	Version     int      `json:"version"`
	Target      string   `json:"target"`
	TargetAttrs []string `json:"target_attrs"`
	Clauses     int      `json:"clauses"`
	Theory      string   `json:"theory,omitempty"`
	Degraded    bool     `json:"degraded,omitempty"`
	CachedBCs   int      `json:"cached_bcs"`
	CacheBytes  int64    `json:"cache_bytes"`
	InFlight    int      `json:"in_flight"`
}

func (s *Server) info(m *Model, full bool) modelInfo {
	info := modelInfo{
		Name:        m.Name(),
		Version:     m.Version(),
		Target:      m.art.Target,
		TargetAttrs: m.art.TargetAttrs,
		Clauses:     m.def.Len(),
		Degraded:    m.art.Degraded,
		CachedBCs:   m.CachedBCs(),
		CacheBytes:  m.CacheBytesUsed(),
		InFlight:    m.InFlight(),
	}
	if full {
		info.Theory = m.art.Theory
	}
	return info
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	out := make([]modelInfo, 0, s.reg.Len())
	for _, name := range s.reg.Names() {
		m, _ := s.reg.Get(name)
		out = append(out, s.info(m, false))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	m, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		s.fail(w, http.StatusNotFound, ErrCodeModelNotFound, fmt.Errorf("no such model %q", r.PathValue("name")))
		return
	}
	s.writeJSON(w, http.StatusOK, s.info(m, true))
}

// handleReload triggers a hot model reload (ReloadDir via the
// configured hook) and reports what changed. Serving never pauses:
// swapped models drain their old versions in the background — but
// readiness dips while the sweep runs, so rolling deploys wait for the
// rebind to finish before routing fresh traffic.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.opts.Reload == nil {
		s.fail(w, http.StatusNotImplemented, ErrCodeUnsupported, errors.New("no reload hook configured"))
		return
	}
	s.reloading.Add(1)
	rep, err := s.opts.Reload(r.Context())
	s.reloading.Add(-1)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, ErrCodeReload, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// predictRequest carries one batch: tuples as attribute-value lists
// and/or examples as ground literals ("advisedby(p1,p2)"). Order is
// preserved in the response — tuples first, then examples.
type predictRequest struct {
	Tuples   [][]string `json:"tuples,omitempty"`
	Examples []string   `json:"examples,omitempty"`
}

type prediction struct {
	Input   string `json:"input"`
	Covered bool   `json:"covered"`
	// Version is the model version that served this example (A/B splits
	// can mix versions within one batch).
	Version int `json:"version"`
}

type predictResponse struct {
	Model       string       `json:"model"`
	Predictions []prediction `json:"predictions"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.opts.Metrics.Inc(metrics.ServeRequests)
	name := r.PathValue("name")
	m, release, ok := s.reg.Acquire(name)
	if !ok {
		s.fail(w, http.StatusNotFound, ErrCodeModelNotFound, fmt.Errorf("no such model %q", name))
		return
	}
	var req predictRequest
	err := json.NewDecoder(r.Body).Decode(&req)
	var examples []Example
	if err == nil {
		if len(req.Tuples)+len(req.Examples) == 0 {
			err = errors.New("empty request: provide tuples and/or examples")
		} else if n := len(req.Tuples) + len(req.Examples); n > s.opts.MaxBatch {
			release()
			s.fail(w, http.StatusRequestEntityTooLarge, ErrCodeBatchTooLarge,
				fmt.Errorf("batch of %d examples exceeds the limit of %d; split the request", n, s.opts.MaxBatch))
			return
		} else {
			examples, err = m.decodeBatch(req)
		}
	}
	release()
	if err != nil {
		s.fail(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	// Bounded concurrency: acquire a slot or give up when the caller
	// does. Queued requests keep their full deadline — the timeout
	// covers the work, the context covers the wait.
	if !s.lim.Acquire(ctx) {
		s.fail(w, http.StatusServiceUnavailable, ErrCodeOverloaded, fmt.Errorf("server at capacity: %w", ctx.Err()))
		return
	}
	defer s.lim.Release()

	verdicts, versions, err := s.reg.Predict(ctx, name, examples)
	if err != nil {
		status, code := http.StatusInternalServerError, ErrCodeInternal
		switch {
		case errors.Is(err, ErrNoModel):
			status, code = http.StatusNotFound, ErrCodeModelNotFound
		case errors.Is(err, ErrOverloaded):
			status, code = http.StatusServiceUnavailable, ErrCodeOverloaded
		default:
			if st, c, ok := httpx.CtxStatus(err); ok {
				status, code = st, c
			}
		}
		s.fail(w, status, code, err)
		return
	}
	resp := predictResponse{Model: name, Predictions: make([]prediction, len(examples))}
	for i, e := range examples {
		resp.Predictions[i] = prediction{Input: e.String(), Covered: verdicts[i], Version: versions[i]}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// decodeBatch turns a predict request into ground literals, tuples
// first, and validates each against the model's target signature so
// malformed inputs surface as 400s, not engine errors. Parse and
// validation errors carry the offending input.
func (m *Model) decodeBatch(req predictRequest) ([]Example, error) {
	out := make([]Example, 0, len(req.Tuples)+len(req.Examples))
	for _, vals := range req.Tuples {
		out = append(out, m.TupleExample(vals))
	}
	for _, s := range req.Examples {
		e, err := parseGround(s)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	for _, e := range out {
		if err := m.checkExample(e); err != nil {
			return nil, err
		}
	}
	return out, nil
}
