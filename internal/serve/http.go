package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/metrics"
)

// ServerOptions configures the HTTP layer.
type ServerOptions struct {
	// MaxConcurrent bounds in-flight predict requests across all models;
	// <=0 selects 64. Excess requests queue on the semaphore and respect
	// their context. (Per-model budgets — Options.ModelConcurrency — shed
	// instead of queueing; this global bound protects the process.)
	MaxConcurrent int
	// MaxBatch bounds examples per predict request; <=0 selects 4096.
	// Larger batches are rejected with 413 before any work is done.
	MaxBatch int
	// RequestTimeout bounds one predict request end to end; <=0 selects
	// 30s. The deadline threads through the engine, so a slow
	// subsumption search is interrupted mid-test, not at a boundary.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown; <=0 selects 10s.
	DrainTimeout time.Duration
	// Reload, when non-nil, backs POST /admin/reload (typically a closure
	// over ReloadDir). Absent, the endpoint answers 501.
	Reload func(ctx context.Context) (*ReloadReport, error)
	// Metrics, when non-nil, backs the /metrics endpoint and receives
	// request counters.
	Metrics *metrics.Collector
}

func (o ServerOptions) normalized() ServerOptions {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	return o
}

// Server serves a registry over HTTP/JSON.
type Server struct {
	reg  *Registry
	opts ServerOptions
	sem  chan struct{}
	mux  *http.ServeMux
}

// NewServer wires the registry's handlers onto one mux: health, model
// listing and inspection, prediction, hot reload, a JSON metrics
// snapshot, and the standard pprof endpoints (same mux, same port — one
// process, one observability surface).
func NewServer(reg *Registry, opts ServerOptions) *Server {
	opts = opts.normalized()
	s := &Server{
		reg:  reg,
		opts: opts,
		sem:  make(chan struct{}, opts.MaxConcurrent),
		mux:  http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleModel)
	s.mux.HandleFunc("POST /v1/models/{name}/predict", s.handlePredict)
	s.mux.HandleFunc("POST /admin/reload", s.handleReload)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's mux, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts on ln until ctx is cancelled, then drains gracefully:
// in-flight requests get DrainTimeout to finish before the listener's
// error is returned. A clean drain returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
		defer cancel()
		if err := hs.Shutdown(drainCtx); err != nil {
			return fmt.Errorf("serve: drain: %w", err)
		}
		<-errCh // always http.ErrServerClosed after Shutdown
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Error codes carried in structured error bodies. Stable strings:
// clients branch on these, not on the human-readable message.
const (
	ErrCodeBadRequest    = "bad_request"
	ErrCodeModelNotFound = "model_not_found"
	ErrCodeBatchTooLarge = "batch_too_large"
	ErrCodeOverloaded    = "overloaded"
	ErrCodeTimeout       = "timeout"
	ErrCodeCancelled     = "cancelled"
	ErrCodeInternal      = "internal"
	ErrCodeReload        = "reload_failed"
	ErrCodeUnsupported   = "unsupported"
)

// errorBody is the structured error envelope:
// {"error":{"code":"overloaded","message":"..."}}.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// fail writes a structured error. Load-shedding statuses (503) carry
// Retry-After so well-behaved clients back off instead of hammering.
func (s *Server) fail(w http.ResponseWriter, status int, code string, err error) {
	s.opts.Metrics.Inc(metrics.ServeErrors)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: err.Error()}})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": s.reg.Len()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.opts.Metrics.Snapshot())
}

// modelInfo is the public description of one bound model.
type modelInfo struct {
	Name        string   `json:"name"`
	Version     int      `json:"version"`
	Target      string   `json:"target"`
	TargetAttrs []string `json:"target_attrs"`
	Clauses     int      `json:"clauses"`
	Theory      string   `json:"theory,omitempty"`
	Degraded    bool     `json:"degraded,omitempty"`
	CachedBCs   int      `json:"cached_bcs"`
	CacheBytes  int64    `json:"cache_bytes"`
	InFlight    int      `json:"in_flight"`
}

func (s *Server) info(m *Model, full bool) modelInfo {
	info := modelInfo{
		Name:        m.Name(),
		Version:     m.Version(),
		Target:      m.art.Target,
		TargetAttrs: m.art.TargetAttrs,
		Clauses:     m.def.Len(),
		Degraded:    m.art.Degraded,
		CachedBCs:   m.CachedBCs(),
		CacheBytes:  m.CacheBytesUsed(),
		InFlight:    m.InFlight(),
	}
	if full {
		info.Theory = m.art.Theory
	}
	return info
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	out := make([]modelInfo, 0, s.reg.Len())
	for _, name := range s.reg.Names() {
		m, _ := s.reg.Get(name)
		out = append(out, s.info(m, false))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	m, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		s.fail(w, http.StatusNotFound, ErrCodeModelNotFound, fmt.Errorf("no such model %q", r.PathValue("name")))
		return
	}
	s.writeJSON(w, http.StatusOK, s.info(m, true))
}

// handleReload triggers a hot model reload (ReloadDir via the
// configured hook) and reports what changed. Serving never pauses:
// swapped models drain their old versions in the background.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.opts.Reload == nil {
		s.fail(w, http.StatusNotImplemented, ErrCodeUnsupported, errors.New("no reload hook configured"))
		return
	}
	rep, err := s.opts.Reload(r.Context())
	if err != nil {
		s.fail(w, http.StatusInternalServerError, ErrCodeReload, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// predictRequest carries one batch: tuples as attribute-value lists
// and/or examples as ground literals ("advisedby(p1,p2)"). Order is
// preserved in the response — tuples first, then examples.
type predictRequest struct {
	Tuples   [][]string `json:"tuples,omitempty"`
	Examples []string   `json:"examples,omitempty"`
}

type prediction struct {
	Input   string `json:"input"`
	Covered bool   `json:"covered"`
	// Version is the model version that served this example (A/B splits
	// can mix versions within one batch).
	Version int `json:"version"`
}

type predictResponse struct {
	Model       string       `json:"model"`
	Predictions []prediction `json:"predictions"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.opts.Metrics.Inc(metrics.ServeRequests)
	name := r.PathValue("name")
	m, release, ok := s.reg.Acquire(name)
	if !ok {
		s.fail(w, http.StatusNotFound, ErrCodeModelNotFound, fmt.Errorf("no such model %q", name))
		return
	}
	var req predictRequest
	err := json.NewDecoder(r.Body).Decode(&req)
	var examples []Example
	if err == nil {
		if len(req.Tuples)+len(req.Examples) == 0 {
			err = errors.New("empty request: provide tuples and/or examples")
		} else if n := len(req.Tuples) + len(req.Examples); n > s.opts.MaxBatch {
			release()
			s.fail(w, http.StatusRequestEntityTooLarge, ErrCodeBatchTooLarge,
				fmt.Errorf("batch of %d examples exceeds the limit of %d; split the request", n, s.opts.MaxBatch))
			return
		} else {
			examples, err = m.decodeBatch(req)
		}
	}
	release()
	if err != nil {
		s.fail(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	// Bounded concurrency: acquire a slot or give up when the caller
	// does. Queued requests keep their full deadline — the timeout
	// covers the work, the context covers the wait.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.fail(w, http.StatusServiceUnavailable, ErrCodeOverloaded, fmt.Errorf("server at capacity: %w", ctx.Err()))
		return
	}

	verdicts, versions, err := s.reg.Predict(ctx, name, examples)
	if err != nil {
		status, code := http.StatusInternalServerError, ErrCodeInternal
		switch {
		case errors.Is(err, ErrNoModel):
			status, code = http.StatusNotFound, ErrCodeModelNotFound
		case errors.Is(err, ErrOverloaded):
			status, code = http.StatusServiceUnavailable, ErrCodeOverloaded
		case errors.Is(err, context.DeadlineExceeded):
			status, code = http.StatusGatewayTimeout, ErrCodeTimeout
		case errors.Is(err, context.Canceled):
			status, code = http.StatusServiceUnavailable, ErrCodeCancelled
		}
		s.fail(w, status, code, err)
		return
	}
	resp := predictResponse{Model: name, Predictions: make([]prediction, len(examples))}
	for i, e := range examples {
		resp.Predictions[i] = prediction{Input: e.String(), Covered: verdicts[i], Version: versions[i]}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// decodeBatch turns a predict request into ground literals, tuples
// first, and validates each against the model's target signature so
// malformed inputs surface as 400s, not engine errors. Parse and
// validation errors carry the offending input.
func (m *Model) decodeBatch(req predictRequest) ([]Example, error) {
	out := make([]Example, 0, len(req.Tuples)+len(req.Examples))
	for _, vals := range req.Tuples {
		out = append(out, m.TupleExample(vals))
	}
	for _, s := range req.Examples {
		e, err := parseGround(s)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	for _, e := range out {
		if err := m.checkExample(e); err != nil {
			return nil, err
		}
	}
	return out, nil
}
