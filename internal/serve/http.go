package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/metrics"
)

// ServerOptions configures the HTTP layer.
type ServerOptions struct {
	// MaxConcurrent bounds in-flight predict requests; <=0 selects 64.
	// Excess requests queue on the semaphore and respect their context.
	MaxConcurrent int
	// RequestTimeout bounds one predict request end to end; <=0 selects
	// 30s. The deadline threads through the engine, so a slow
	// subsumption search is interrupted mid-test, not at a boundary.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown; <=0 selects 10s.
	DrainTimeout time.Duration
	// Metrics, when non-nil, backs the /metrics endpoint and receives
	// request counters.
	Metrics *metrics.Collector
}

func (o ServerOptions) normalized() ServerOptions {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	return o
}

// Server serves a registry over HTTP/JSON.
type Server struct {
	reg  *Registry
	opts ServerOptions
	sem  chan struct{}
	mux  *http.ServeMux
}

// NewServer wires the registry's handlers onto one mux: health, model
// listing and inspection, prediction, a JSON metrics snapshot, and the
// standard pprof endpoints (same mux, same port — one process, one
// observability surface).
func NewServer(reg *Registry, opts ServerOptions) *Server {
	opts = opts.normalized()
	s := &Server{
		reg:  reg,
		opts: opts,
		sem:  make(chan struct{}, opts.MaxConcurrent),
		mux:  http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleModel)
	s.mux.HandleFunc("POST /v1/models/{name}/predict", s.handlePredict)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's mux, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts on ln until ctx is cancelled, then drains gracefully:
// in-flight requests get DrainTimeout to finish before the listener's
// error is returned. A clean drain returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
		defer cancel()
		if err := hs.Shutdown(drainCtx); err != nil {
			return fmt.Errorf("serve: drain: %w", err)
		}
		<-errCh // always http.ErrServerClosed after Shutdown
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.opts.Metrics.Inc(metrics.ServeErrors)
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": s.reg.Len()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.opts.Metrics.Snapshot())
}

// modelInfo is the public description of one bound model.
type modelInfo struct {
	Name        string   `json:"name"`
	Target      string   `json:"target"`
	TargetAttrs []string `json:"target_attrs"`
	Clauses     int      `json:"clauses"`
	Theory      string   `json:"theory,omitempty"`
	Degraded    bool     `json:"degraded,omitempty"`
	CachedBCs   int      `json:"cached_bcs"`
}

func (s *Server) info(m *Model, full bool) modelInfo {
	info := modelInfo{
		Name:        m.Name(),
		Target:      m.art.Target,
		TargetAttrs: m.art.TargetAttrs,
		Clauses:     m.def.Len(),
		Degraded:    m.art.Degraded,
		CachedBCs:   m.CachedBCs(),
	}
	if full {
		info.Theory = m.art.Theory
	}
	return info
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	out := make([]modelInfo, 0, s.reg.Len())
	for _, name := range s.reg.Names() {
		m, _ := s.reg.Get(name)
		out = append(out, s.info(m, false))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	m, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("no such model %q", r.PathValue("name")))
		return
	}
	s.writeJSON(w, http.StatusOK, s.info(m, true))
}

// predictRequest carries one batch: tuples as attribute-value lists
// and/or examples as ground literals ("advisedby(p1,p2)"). Order is
// preserved in the response — tuples first, then examples.
type predictRequest struct {
	Tuples   [][]string `json:"tuples,omitempty"`
	Examples []string   `json:"examples,omitempty"`
}

type prediction struct {
	Input   string `json:"input"`
	Covered bool   `json:"covered"`
}

type predictResponse struct {
	Model       string       `json:"model"`
	Predictions []prediction `json:"predictions"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.opts.Metrics.Inc(metrics.ServeRequests)
	m, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("no such model %q", r.PathValue("name")))
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Tuples)+len(req.Examples) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty request: provide tuples and/or examples"))
		return
	}
	examples, err := m.decodeBatch(req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	// Bounded concurrency: acquire a slot or give up when the caller
	// does. Queued requests keep their full deadline — the timeout
	// covers the work, the context covers the wait.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("server at capacity: %w", ctx.Err()))
		return
	}

	verdicts, err := m.PredictBatch(ctx, examples)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			status = http.StatusServiceUnavailable
		}
		s.fail(w, status, err)
		return
	}
	resp := predictResponse{Model: m.Name(), Predictions: make([]prediction, len(examples))}
	for i, e := range examples {
		resp.Predictions[i] = prediction{Input: e.String(), Covered: verdicts[i]}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// decodeBatch turns a predict request into ground literals, tuples
// first, and validates each against the model's target signature so
// malformed inputs surface as 400s, not engine errors. Parse and
// validation errors carry the offending input.
func (m *Model) decodeBatch(req predictRequest) ([]Example, error) {
	out := make([]Example, 0, len(req.Tuples)+len(req.Examples))
	for _, vals := range req.Tuples {
		out = append(out, m.TupleExample(vals))
	}
	for _, s := range req.Examples {
		e, err := parseGround(s)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	for _, e := range out {
		if err := m.checkExample(e); err != nil {
			return nil, err
		}
	}
	return out, nil
}
