package serve

import (
	"context"
	"encoding/json"
	"os"
	"testing"
)

// benchBaseline mirrors the committed BENCH_serve.json schema (the
// fields the gate needs).
type benchBaseline struct {
	Runs []struct {
		Date  string `json:"date"`
		Cells []struct {
			Name              string  `json:"name"`
			PredictionsPerSec float64 `json:"predictions_per_sec"`
		} `json:"cells"`
	} `json:"runs"`
}

// TestServeBenchGate is the CI throughput regression gate: opt-in via
// SERVE_BENCH_GATE=1, it measures the hot-path workers=1 cell of
// BenchmarkPredictBatch and fails if throughput fell more than 30%
// below the latest committed BENCH_serve.json run. CI machines are
// noisy, so the tolerance is wide — the gate exists to catch
// order-of-magnitude regressions (a broken memo or cache path turns
// 8M predictions/sec into 40k, far outside any noise band), not
// single-digit drift.
func TestServeBenchGate(t *testing.T) {
	if os.Getenv("SERVE_BENCH_GATE") != "1" {
		t.Skip("set SERVE_BENCH_GATE=1 to run the throughput gate")
	}
	data, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Fatal(err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if len(base.Runs) == 0 {
		t.Fatal("BENCH_serve.json has no runs")
	}
	latest := base.Runs[len(base.Runs)-1]
	var want float64
	for _, cell := range latest.Cells {
		if cell.Name == "workers=1/hot" {
			want = cell.PredictionsPerSec
		}
	}
	if want == 0 {
		t.Fatalf("run %s has no workers=1/hot cell", latest.Date)
	}

	const batch = 64
	d, art := chainWorld(t, 200)
	examples := benchExamples(batch)
	m, err := Bind(context.Background(), "gp", art, d, Options{Workers: 1, CacheBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PredictBatch(context.Background(), examples); err != nil {
		t.Fatal(err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.PredictBatch(context.Background(), examples); err != nil {
				b.Fatal(err)
			}
		}
	})
	got := float64(res.N*batch) / res.T.Seconds()
	floor := 0.7 * want
	t.Logf("hot workers=1: %.0f predictions/sec (baseline %s: %.0f, floor %.0f)", got, latest.Date, want, floor)
	if got < floor {
		t.Fatalf("serving throughput regressed >30%%: %.0f predictions/sec < %.0f (70%% of the %s baseline %.0f); if intentional, append a new run to BENCH_serve.json",
			got, floor, latest.Date, want)
	}
}
