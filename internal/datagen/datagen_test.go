package datagen

import (
	"regexp"
	"strconv"
	"testing"

	"repro/internal/db"
)

func TestGenerateKnownNames(t *testing.T) {
	for _, name := range Names() {
		ds, err := Generate(name, Config{Scale: 0.1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Name != name {
			t.Errorf("%s: Name = %s", name, ds.Name)
		}
		if len(ds.Pos) == 0 || len(ds.Neg) == 0 {
			t.Errorf("%s: %d pos, %d neg", name, len(ds.Pos), len(ds.Neg))
		}
		if ds.DB.TotalTuples() == 0 {
			t.Errorf("%s: empty database", name)
		}
		if err := ds.Manual.Validate(ds.DB.Schema(), ds.Target, ds.TargetArity()); err != nil {
			t.Errorf("%s: manual bias invalid: %v", name, err)
		}
		if _, err := ds.Manual.Compile(ds.DB.Schema(), ds.Target, ds.TargetArity()); err != nil {
			t.Errorf("%s: manual bias does not compile: %v", name, err)
		}
	}
	if _, err := Generate("nope", Config{}); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, _ := Generate(name, Config{Scale: 0.1, Seed: 9})
		b, _ := Generate(name, Config{Scale: 0.1, Seed: 9})
		if a.DB.TotalTuples() != b.DB.TotalTuples() {
			t.Errorf("%s: tuple counts differ across runs", name)
		}
		if len(a.Pos) != len(b.Pos) || len(a.Neg) != len(b.Neg) {
			t.Errorf("%s: example counts differ across runs", name)
		}
		for i := range a.Pos {
			if a.Pos[i].String() != b.Pos[i].String() {
				t.Fatalf("%s: positive %d differs", name, i)
			}
		}
	}
}

// TestPrefixConsistencyAcrossScales pins the id-space contract every
// generator shares (datagen.id): for each entity prefix the emitted ids
// form a contiguous zero-padded range, the range start is
// scale-invariant, and a smaller scale's id set is a strict prefix of a
// larger scale's — so scaled-down test fixtures and full-size runs
// agree on every entity they both contain, and IND discovery sees the
// same disjoint value domains at every scale. Categorical code spaces
// (course levels 300/400/500) are exempt from contiguity but must be
// identical at every scale.
func TestPrefixConsistencyAcrossScales(t *testing.T) {
	idPattern := regexp.MustCompile(`^([A-Za-z]+)_(\d+)$`)
	categorical := map[string]bool{"level": true}
	scales := []float64{0.1, 0.5, 1.0}

	collect := func(t *testing.T, name string, scale float64) map[string]map[int]bool {
		t.Helper()
		ds, err := Generate(name, Config{Scale: scale, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ids := make(map[string]map[int]bool)
		for _, rel := range ds.DB.Schema().Names() {
			for _, tuple := range ds.DB.Relation(rel).Tuples {
				for _, v := range tuple {
					m := idPattern.FindStringSubmatch(v)
					if m == nil {
						continue
					}
					n, err := strconv.Atoi(m[2])
					if err != nil {
						t.Fatal(err)
					}
					if ids[m[1]] == nil {
						ids[m[1]] = make(map[int]bool)
					}
					ids[m[1]][n] = true
				}
			}
		}
		return ids
	}

	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sets := make([]map[string]map[int]bool, len(scales))
			for i, sc := range scales {
				sets[i] = collect(t, name, sc)
			}
			for prefix := range sets[0] {
				for i, sc := range scales {
					ids, ok := sets[i][prefix]
					if !ok {
						t.Errorf("prefix %s present at scale %g but absent at %g", prefix, scales[0], sc)
						continue
					}
					if categorical[prefix] {
						continue
					}
					min, max := -1, -1
					for n := range ids {
						if min == -1 || n < min {
							min = n
						}
						if n > max {
							max = n
						}
					}
					if len(ids) != max-min+1 {
						t.Errorf("scale %g: prefix %s has %d distinct ids over range [%d,%d]; counter ids must be contiguous",
							sc, prefix, len(ids), min, max)
					}
				}
				// Cross-scale: the smaller scale's id set must be contained
				// in the larger's (with contiguity above, that makes it a
				// prefix of the larger counter range); categorical code
				// spaces must not grow with scale at all.
				for i := 1; i < len(scales); i++ {
					small, large := sets[i-1][prefix], sets[i][prefix]
					if small == nil || large == nil {
						continue
					}
					for n := range small {
						if !large[n] {
							t.Errorf("prefix %s: id %d exists at scale %g but not at %g; smaller scales must be prefixes of larger ones",
								prefix, n, scales[i-1], scales[i])
							break
						}
					}
					if categorical[prefix] && len(small) != len(large) {
						t.Errorf("categorical prefix %s: %d codes at scale %g vs %d at %g; code space must be scale-invariant",
							prefix, len(small), scales[i-1], len(large), scales[i])
					}
				}
			}
		})
	}
}

func TestUWShape(t *testing.T) {
	ds := UW(Config{})
	if got := ds.DB.Schema().Len(); got != 9 {
		t.Errorf("UW relations = %d, want 9", got)
	}
	if len(ds.Pos) < 95 || len(ds.Pos) > 102 {
		t.Errorf("UW positives = %d, want ≈102", len(ds.Pos))
	}
	if len(ds.Neg) != 2*len(ds.Pos) {
		t.Errorf("UW negatives = %d, want 2x positives", len(ds.Neg))
	}
	total := ds.DB.TotalTuples()
	if total < 1200 || total > 2600 {
		t.Errorf("UW tuples = %d, want ≈1.8K", total)
	}
	if got := ds.Manual.Size(); got != 19 {
		t.Errorf("UW manual bias size = %d, want 19 (paper §6.1)", got)
	}
}

// uwSatisfies reports whether (s,p) has a co-publication and whether it
// has a TAship in the database.
func uwSatisfies(d *db.Database, st, pr string) (copub, taship bool) {
	pub := d.Relation("publication")
	for _, t1 := range pub.Lookup(1, st) {
		for _, t2 := range pub.Lookup(1, pr) {
			if t1[0] == t2[0] {
				copub = true
			}
		}
	}
	ta := d.Relation("ta")
	tb := d.Relation("taughtBy")
	for _, t1 := range ta.Lookup(1, st) {
		for _, t2 := range tb.Lookup(0, t1[0]) {
			if t2[1] == pr && t2[2] == t1[2] {
				taship = true
			}
		}
	}
	return
}

func TestUWConcept(t *testing.T) {
	ds := UW(Config{})
	full := 0
	for _, e := range ds.Pos {
		copub, taship := uwSatisfies(ds.DB, e.Terms[0].Name, e.Terms[1].Name)
		if copub && taship {
			full++
		}
	}
	// ≈70% of positives carry the full pattern (rest are partial/noise).
	if frac := float64(full) / float64(len(ds.Pos)); frac < 0.55 || frac > 0.85 {
		t.Errorf("full-pattern positives = %.2f, want ≈0.70", frac)
	}
	for _, e := range ds.Neg {
		copub, taship := uwSatisfies(ds.DB, e.Terms[0].Name, e.Terms[1].Name)
		if copub && taship {
			t.Fatalf("negative %v satisfies the full concept", e)
		}
	}
	// Some negatives must be hard (co-publication without advising).
	hard := 0
	for _, e := range ds.Neg {
		if copub, _ := uwSatisfies(ds.DB, e.Terms[0].Name, e.Terms[1].Name); copub {
			hard++
		}
	}
	if hard == 0 {
		t.Error("expected hard negatives with co-publications")
	}
}

// hivHasMotif reports whether the compound has an n=o double bond.
func hivHasMotif(d *db.Database, comp string) bool {
	atm := d.Relation("atm")
	bnd := d.Relation("bnd")
	elemOf := map[string]string{}
	for _, t := range atm.Lookup(1, comp) {
		elemOf[t[0]] = t[2]
	}
	for _, b := range bnd.Tuples {
		if b[3] != "double" {
			continue
		}
		e1, ok1 := elemOf[b[1]]
		e2, ok2 := elemOf[b[2]]
		if !ok1 || !ok2 {
			continue
		}
		if (e1 == "n" && e2 == "o") || (e1 == "o" && e2 == "n") {
			return true
		}
	}
	return false
}

func TestHIVConcept(t *testing.T) {
	ds := HIV(Config{Scale: 0.3})
	if got := ds.DB.Schema().Len(); got != 5 {
		t.Errorf("HIV relations = %d, want 5", got)
	}
	for _, e := range ds.Pos {
		if !hivHasMotif(ds.DB, e.Terms[0].Name) {
			t.Fatalf("positive %v lacks the n=o motif", e)
		}
	}
	for _, e := range ds.Neg {
		if hivHasMotif(ds.DB, e.Terms[0].Name) {
			t.Fatalf("negative %v carries the n=o motif", e)
		}
	}
	if got := ds.Manual.Size(); got != 14 {
		t.Errorf("HIV manual bias size = %d, want 14", got)
	}
	// Negatives must still contain nitrogen (no one-literal shortcut).
	nInNeg := false
	atm := ds.DB.Relation("atm")
	negSet := map[string]bool{}
	for _, e := range ds.Neg {
		negSet[e.Terms[0].Name] = true
	}
	for _, tp := range atm.Tuples {
		if negSet[tp[1]] && tp[2] == "n" {
			nInNeg = true
			break
		}
	}
	if !nInNeg {
		t.Error("negative compounds must contain nitrogen atoms")
	}
}

func imdbDirectsDrama(d *db.Database, p string) bool {
	directed := d.Relation("directed")
	genre := d.Relation("genre")
	for _, t := range directed.Lookup(0, p) {
		for _, g := range genre.Lookup(0, t[1]) {
			if g[1] == "g_drama" {
				return true
			}
		}
	}
	return false
}

func TestIMDbConcept(t *testing.T) {
	ds := IMDb(Config{Scale: 0.2})
	if got := ds.DB.Schema().Len(); got != 46 {
		// 5 core + 18 movie + 5 person + 5 crew + 13 catalog = 46.
		t.Errorf("IMDb relations = %d, want 46", got)
	}
	for _, e := range ds.Pos {
		if !imdbDirectsDrama(ds.DB, e.Terms[0].Name) {
			t.Fatalf("positive %v directed no drama", e)
		}
	}
	for _, e := range ds.Neg {
		if imdbDirectsDrama(ds.DB, e.Terms[0].Name) {
			t.Fatalf("negative %v directed a drama", e)
		}
	}
	if got := ds.Manual.Size(); got < 100 || got > 125 {
		t.Errorf("IMDb manual bias size = %d, want ≈112 (paper §6.1)", got)
	}
}

func fltIsThrough(d *db.Database, fid, hub, via string) bool {
	flight := d.Relation("flight")
	leg := d.Relation("leg")
	srcOK := false
	for _, t := range flight.Lookup(0, fid) {
		if t[1] == hub {
			srcOK = true
		}
	}
	if !srcOK {
		return false
	}
	for _, t := range leg.Lookup(0, fid) {
		if t[1] == via {
			return true
		}
	}
	return false
}

func TestFLTConcept(t *testing.T) {
	ds := FLT(Config{Scale: 0.3})
	if got := ds.DB.Schema().Len(); got != 3 {
		t.Errorf("FLT relations = %d, want 3", got)
	}
	hub, via := id("apt", 0), id("apt", 1)
	for _, e := range ds.Pos {
		if !fltIsThrough(ds.DB, e.Terms[0].Name, hub, via) {
			t.Fatalf("positive %v does not satisfy the concept", e)
		}
	}
	for _, e := range ds.Neg {
		if fltIsThrough(ds.DB, e.Terms[0].Name, hub, via) {
			t.Fatalf("negative %v satisfies the concept", e)
		}
	}
	if len(ds.Neg) != 3*len(ds.Pos) {
		t.Errorf("FLT ratio = %d:%d, want 1:3", len(ds.Pos), len(ds.Neg))
	}
	if got := ds.Manual.Size(); got != 18 {
		t.Errorf("FLT manual bias size = %d, want 18", got)
	}
}

func sysIsMalicious(d *db.Database, proc string) bool {
	ev := d.Relation("event")
	readCred, writeNet := false, false
	for _, t := range ev.Lookup(0, proc) {
		if t[2] == "f_cred_store" && t[3] == "read" {
			readCred = true
		}
		if t[2] == "f_net_spool" && t[3] == "write" {
			writeNet = true
		}
	}
	return readCred && writeNet
}

func TestSYSConcept(t *testing.T) {
	ds := SYS(Config{Scale: 0.3})
	if got := ds.DB.Schema().Len(); got != 1 {
		t.Errorf("SYS relations = %d, want 1 (single wide relation)", got)
	}
	for _, e := range ds.Pos {
		if !sysIsMalicious(ds.DB, e.Terms[0].Name) {
			t.Fatalf("positive %v lacks the malicious pattern", e)
		}
	}
	for _, e := range ds.Neg {
		if sysIsMalicious(ds.DB, e.Terms[0].Name) {
			t.Fatalf("negative %v carries the malicious pattern", e)
		}
	}
	if len(ds.Neg) <= len(ds.Pos) {
		t.Error("SYS must have more negatives than positives")
	}
	if got := ds.Manual.Size(); got != 9 {
		t.Errorf("SYS manual bias size = %d, want 9", got)
	}
}

func TestScaleControlsSize(t *testing.T) {
	smallDS := UW(Config{Scale: 0.2})
	bigDS := UW(Config{Scale: 1})
	if smallDS.DB.TotalTuples() >= bigDS.DB.TotalTuples() {
		t.Error("scale must control tuple counts")
	}
	if len(smallDS.Pos) >= len(bigDS.Pos) {
		t.Error("scale must control example counts")
	}
}
