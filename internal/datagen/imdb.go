package datagen

import (
	"math/rand"

	"repro/internal/bias"
	"repro/internal/db"
	"repro/internal/logic"
)

// imdbSatellites enumerates the long tail of the 46-relation IMDb-style
// schema: per-movie, per-person, and catalog relations beyond the core
// five (movie, person, directed, actedIn, genre). Each entry declares the
// relation's attributes and the type names its expert bias assigns; the
// first attribute of "movieX" relations joins movie, of "personX"
// relations joins person.
type satellite struct {
	name  string
	attrs []string
	types []string
}

var movieSatellites = []satellite{
	{"movieYear", []string{"movie", "year"}, []string{"Tm", "Tyear"}},
	{"movieRating", []string{"movie", "rating"}, []string{"Tm", "Trating"}},
	{"movieRuntime", []string{"movie", "runtime"}, []string{"Tm", "Truntime"}},
	{"movieCountry", []string{"movie", "country"}, []string{"Tm", "Tcountry"}},
	{"movieLanguage", []string{"movie", "language"}, []string{"Tm", "Tlanguage"}},
	{"movieBudget", []string{"movie", "budget"}, []string{"Tm", "Tbudget"}},
	{"movieGross", []string{"movie", "gross"}, []string{"Tm", "Tgross"}},
	{"movieStudio", []string{"movie", "studio"}, []string{"Tm", "Tstudio"}},
	{"movieColor", []string{"movie", "color"}, []string{"Tm", "Tcolor"}},
	{"movieSound", []string{"movie", "sound"}, []string{"Tm", "Tsound"}},
	{"movieCert", []string{"movie", "cert"}, []string{"Tm", "Tcert"}},
	{"filmedAt", []string{"movie", "location"}, []string{"Tm", "Tlocation"}},
	{"screenedAt", []string{"movie", "festival"}, []string{"Tm", "Tfestival"}},
	{"distributedBy", []string{"movie", "distributor"}, []string{"Tm", "Tdistributor"}},
	{"hasKeyword", []string{"movie", "keyword"}, []string{"Tm", "Tkeyword"}},
	{"wonAward", []string{"movie", "award"}, []string{"Tm", "Taward"}},
	{"nominatedFor", []string{"movie", "award"}, []string{"Tm", "Taward"}},
	{"inSeries", []string{"movie", "series"}, []string{"Tm", "Tseries"}},
}

var personSatellites = []satellite{
	{"personBorn", []string{"person", "year"}, []string{"Tp", "Tyear"}},
	{"personGender", []string{"person", "gender"}, []string{"Tp", "Tgender"}},
	{"personNationality", []string{"person", "country"}, []string{"Tp", "Tcountry"}},
	{"personHeight", []string{"person", "height"}, []string{"Tp", "Theight"}},
	{"personAward", []string{"person", "award"}, []string{"Tp", "Taward"}},
}

var crewSatellites = []satellite{
	{"produced", []string{"person", "movie"}, []string{"Tp", "Tm"}},
	{"wrote", []string{"person", "movie"}, []string{"Tp", "Tm"}},
	{"edited", []string{"person", "movie"}, []string{"Tp", "Tm"}},
	{"composedFor", []string{"person", "movie"}, []string{"Tp", "Tm"}},
	{"shotFor", []string{"person", "movie"}, []string{"Tp", "Tm"}},
}

var catalogSatellites = []satellite{
	{"studio", []string{"studio"}, []string{"Tstudio"}},
	{"studioCountry", []string{"studio", "country"}, []string{"Tstudio", "Tcountry"}},
	{"location", []string{"location"}, []string{"Tlocation"}},
	{"festival", []string{"festival"}, []string{"Tfestival"}},
	{"distributor", []string{"distributor"}, []string{"Tdistributor"}},
	{"keyword", []string{"keyword"}, []string{"Tkeyword"}},
	{"award", []string{"award"}, []string{"Taward"}},
	{"series", []string{"series"}, []string{"Tseries"}},
	{"country", []string{"country"}, []string{"Tcountry"}},
	{"language", []string{"language"}, []string{"Tlanguage"}},
	{"genreName", []string{"gname"}, []string{"Tgenre"}},
	{"sequelOf", []string{"movie", "movie2"}, []string{"Tm", "Tm"}},
	{"workedWith", []string{"person", "person2"}, []string{"Tp", "Tp"}},
}

// IMDb generates the movie database (§6.1): 46 relations, dominated by
// the core movie/person/directed/actedIn/genre tables plus a long tail
// of satellites that make the schema wide (the reason the paper's expert
// needed 112 bias definitions). The target dramaDirector(dir) holds when
// dir directed at least one drama movie — a two-hop join ending in the
// constant "g_drama".
func IMDb(cfg Config) *Dataset { return mustGenerate("imdb", cfg) }

func generateIMDb(cfg Config, mk SinkFactory) (*Dataset, error) {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed + 3))

	nMovie := cfg.scaled(1500, 240)
	nPerson := cfg.scaled(1200, 200)
	nPos := cfg.scaled(120, 40)
	nNeg := 2 * nPos

	s := db.NewSchema()
	s.MustAdd("movie", "movie")
	s.MustAdd("person", "person")
	s.MustAdd("directed", "person", "movie")
	s.MustAdd("actedIn", "person", "movie")
	s.MustAdd("genre", "movie", "gname")
	all := make([]satellite, 0, 48)
	all = append(all, movieSatellites...)
	all = append(all, personSatellites...)
	all = append(all, crewSatellites...)
	all = append(all, catalogSatellites...)
	for _, sat := range all {
		s.MustAdd(sat.name, sat.attrs...)
	}
	sink, err := mk(s)
	if err != nil {
		return nil, err
	}
	d := newDedupSink(sink)

	genres := []string{"g_drama", "g_comedy", "g_action", "g_horror", "g_scifi", "g_romance", "g_thriller", "g_doc"}
	years := make([]string, 40)
	for i := range years {
		years[i] = id("year", 1980+i)
	}
	small := func(prefix string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = id(prefix, i)
		}
		return out
	}
	studios := small("studio", 40)
	locations := small("loc", 60)
	festivals := small("fest", 15)
	distributors := small("dist", 25)
	keywords := small("kw", 120)
	awards := small("award", 30)
	seriesIDs := small("series", 50)
	countries := small("country", 20)
	languages := small("lang", 15)
	ratings := []string{"r_1", "r_2", "r_3", "r_4", "r_5"}
	runtimes := []string{"rt_short", "rt_med", "rt_long"}
	budgets := []string{"b_low", "b_mid", "b_high"}
	grosses := []string{"gr_low", "gr_mid", "gr_high"}
	colors := []string{"color", "bw"}
	sounds := []string{"mono", "stereo", "atmos"}
	certs := []string{"cert_g", "cert_pg", "cert_r"}
	genders := []string{"f", "m"}
	heights := []string{"h_short", "h_avg", "h_tall"}

	// Catalog contents.
	insertAll := func(rel string, vals []string) {
		for _, v := range vals {
			d.MustInsert(rel, v)
		}
	}
	insertAll("studio", studios)
	insertAll("location", locations)
	insertAll("festival", festivals)
	insertAll("distributor", distributors)
	insertAll("keyword", keywords)
	insertAll("award", awards)
	insertAll("series", seriesIDs)
	insertAll("country", countries)
	insertAll("language", languages)
	insertAll("genreName", genres)
	for _, st := range studios {
		d.MustInsert("studioCountry", st, pick(rng, countries))
	}

	movies := make([]string, nMovie)
	isDrama := make([]bool, nMovie)
	for i := range movies {
		movies[i] = id("movie", i)
		d.MustInsert("movie", movies[i])
		g1 := pick(rng, genres)
		d.MustInsert("genre", movies[i], g1)
		isDrama[i] = g1 == "g_drama"
		if rng.Intn(4) == 0 { // some movies have a second genre
			g2 := pick(rng, genres)
			d.MustInsert("genre", movies[i], g2)
			isDrama[i] = isDrama[i] || g2 == "g_drama"
		}
		d.MustInsert("movieYear", movies[i], pick(rng, years))
		d.MustInsert("movieRating", movies[i], pick(rng, ratings))
		d.MustInsert("movieRuntime", movies[i], pick(rng, runtimes))
		d.MustInsert("movieCountry", movies[i], pick(rng, countries))
		d.MustInsert("movieLanguage", movies[i], pick(rng, languages))
		if rng.Intn(2) == 0 {
			d.MustInsert("movieBudget", movies[i], pick(rng, budgets))
			d.MustInsert("movieGross", movies[i], pick(rng, grosses))
		}
		d.MustInsert("movieStudio", movies[i], pick(rng, studios))
		d.MustInsert("movieColor", movies[i], pick(rng, colors))
		d.MustInsert("movieSound", movies[i], pick(rng, sounds))
		d.MustInsert("movieCert", movies[i], pick(rng, certs))
		d.MustInsert("filmedAt", movies[i], pick(rng, locations))
		if rng.Intn(3) == 0 {
			d.MustInsert("screenedAt", movies[i], pick(rng, festivals))
		}
		d.MustInsert("distributedBy", movies[i], pick(rng, distributors))
		for k, n := 0, 1+rng.Intn(3); k < n; k++ {
			d.MustInsert("hasKeyword", movies[i], pick(rng, keywords))
		}
		if rng.Intn(8) == 0 {
			d.MustInsert("wonAward", movies[i], pick(rng, awards))
		}
		if rng.Intn(5) == 0 {
			d.MustInsert("nominatedFor", movies[i], pick(rng, awards))
		}
		if rng.Intn(6) == 0 {
			d.MustInsert("inSeries", movies[i], pick(rng, seriesIDs))
		}
		if i > 0 && rng.Intn(10) == 0 {
			d.MustInsert("sequelOf", movies[i], movies[rng.Intn(i)])
		}
	}

	persons := make([]string, nPerson)
	for i := range persons {
		persons[i] = id("person", i)
		d.MustInsert("person", persons[i])
		d.MustInsert("personBorn", persons[i], pick(rng, years))
		d.MustInsert("personGender", persons[i], pick(rng, genders))
		d.MustInsert("personNationality", persons[i], pick(rng, countries))
		if rng.Intn(2) == 0 {
			d.MustInsert("personHeight", persons[i], pick(rng, heights))
		}
		if rng.Intn(10) == 0 {
			d.MustInsert("personAward", persons[i], pick(rng, awards))
		}
		if i > 0 && rng.Intn(8) == 0 {
			d.MustInsert("workedWith", persons[i], persons[rng.Intn(i)])
		}
	}

	// Directors: the first nPos+nNeg persons direct movies; positives
	// direct at least one drama, negatives none. Remaining persons are
	// cast and crew.
	dramaMovies := make([]string, 0, nMovie)
	nonDrama := make([]string, 0, nMovie)
	for i, m := range movies {
		if isDrama[i] {
			dramaMovies = append(dramaMovies, m)
		} else {
			nonDrama = append(nonDrama, m)
		}
	}
	var pos, neg []logic.Literal
	for i := 0; i < nPos; i++ {
		p := persons[i]
		d.MustInsert("directed", p, pick(rng, dramaMovies))
		if rng.Intn(2) == 0 {
			d.MustInsert("directed", p, pick(rng, nonDrama))
		}
		pos = append(pos, example("dramaDirector", p))
	}
	for i := nPos; i < nPos+nNeg && i < nPerson; i++ {
		p := persons[i]
		d.MustInsert("directed", p, pick(rng, nonDrama))
		if rng.Intn(2) == 0 {
			d.MustInsert("directed", p, pick(rng, nonDrama))
		}
		neg = append(neg, example("dramaDirector", p))
	}
	// Cast and crew links.
	for _, m := range movies {
		for k, n := 0, 2+rng.Intn(4); k < n; k++ {
			d.MustInsert("actedIn", pick(rng, persons), m)
		}
		if rng.Intn(2) == 0 {
			d.MustInsert("produced", pick(rng, persons), m)
		}
		if rng.Intn(2) == 0 {
			d.MustInsert("wrote", pick(rng, persons), m)
		}
		if rng.Intn(3) == 0 {
			d.MustInsert("edited", pick(rng, persons), m)
		}
		if rng.Intn(3) == 0 {
			d.MustInsert("composedFor", pick(rng, persons), m)
		}
		if rng.Intn(3) == 0 {
			d.MustInsert("shotFor", pick(rng, persons), m)
		}
	}

	return &Dataset{
		Name:           "imdb",
		Target:         "dramaDirector",
		TargetAttrs:    []string{"person"},
		Pos:            pos,
		Neg:            neg,
		Manual:         imdbManualBias(),
		TrueDefinition: "dramaDirector(P) :- directed(P,M), genre(M,g_drama).",
	}, nil
}

// imdbManualBias builds the expert bias for the 46-relation schema. The
// paper reports 112 hand-written definitions for IMDb; the count here
// comes out the same way: one or two predicate definitions per relation
// plus the mode definitions an expert would write for the join-bearing
// relations.
func imdbManualBias() *bias.Bias {
	b := &bias.Bias{}
	addPred := func(rel string, types ...string) {
		b.Predicates = append(b.Predicates, bias.PredicateDef{Relation: rel, Types: types})
	}
	addMode := func(rel string, syms ...bias.ModeSymbol) {
		b.Modes = append(b.Modes, bias.ModeDef{Relation: rel, Symbols: syms})
	}
	const (
		I = bias.Input
		O = bias.Output
		C = bias.Constant
	)
	addPred("dramaDirector", "Tp")
	addPred("movie", "Tm")
	addPred("person", "Tp")
	addPred("directed", "Tp", "Tm")
	addPred("actedIn", "Tp", "Tm")
	addPred("genre", "Tm", "Tgenre")
	for _, group := range [][]satellite{movieSatellites, personSatellites, crewSatellites, catalogSatellites} {
		for _, sat := range group {
			addPred(sat.name, sat.types...)
		}
	}
	// Modes: core join relations in both directions, genre with constant,
	// per-movie satellites forward, catalog memberships forward.
	addMode("movie", I)
	addMode("person", I)
	addMode("directed", I, O)
	addMode("directed", O, I)
	addMode("actedIn", I, O)
	addMode("actedIn", O, I)
	addMode("genre", I, O)
	addMode("genre", I, C)
	addMode("genre", O, I)
	for _, sat := range movieSatellites {
		addMode(sat.name, I, O)
		addMode(sat.name, I, C)
	}
	for _, sat := range personSatellites {
		addMode(sat.name, I, O)
		addMode(sat.name, I, C)
	}
	for _, sat := range crewSatellites {
		addMode(sat.name, I, O)
		addMode(sat.name, O, I)
	}
	for _, sat := range catalogSatellites {
		syms := make([]bias.ModeSymbol, len(sat.attrs))
		for i := range syms {
			syms[i] = O
		}
		syms[0] = I
		addMode(sat.name, syms...)
	}
	return b
}
