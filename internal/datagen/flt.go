package datagen

import (
	"math/rand"

	"repro/internal/bias"
	"repro/internal/db"
	"repro/internal/logic"
)

// FLT generates the flights dataset (§6.1): 3 relations about flights,
// airports and route legs. The task from the paper's funded project —
// "learn the flights with the same source that pass through a given
// location" — becomes throughLoc(fid): flights departing the hub airport
// whose route passes through the via airport. The concept needs two
// constants (hub and via), which is why the paper's No-const baseline
// scores 0 on FLT while Manual and AutoBias reach F-measure 1 (Table 5).
func FLT(cfg Config) *Dataset { return mustGenerate("flt", cfg) }

func generateFLT(cfg Config, mk SinkFactory) (*Dataset, error) {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed + 4))

	nFlight := cfg.scaled(2000, 300)
	nAirport := cfg.scaled(60, 20)
	nPos := cfg.scaled(150, 40)
	nNeg := 3 * nPos // the paper's FLT has a 1:3 ratio (200/600)

	s := db.NewSchema()
	s.MustAdd("airport", "code", "region")
	s.MustAdd("flight", "fid", "src", "dst")
	s.MustAdd("leg", "fid", "loc", "seq")
	sink, err := mk(s)
	if err != nil {
		return nil, err
	}
	d := newDedupSink(sink)

	regions := []string{"west", "east", "central", "south"}
	airports := make([]string, nAirport)
	for i := range airports {
		airports[i] = id("apt", i)
		d.MustInsert("airport", airports[i], pick(rng, regions))
	}
	hub, via := airports[0], airports[1]
	seqs := []string{"seq_1", "seq_2", "seq_3", "seq_4"}

	isPos := func(i int) bool { return i < nPos }
	var pos, neg []logic.Literal
	for i := 0; i < nFlight; i++ {
		fid := id("flt", i)
		src := pick(rng, airports)
		dst := pick(rng, airports)
		stops := make([]string, 1+rng.Intn(3))
		for k := range stops {
			stops[k] = pick(rng, airports)
		}
		switch {
		case isPos(i):
			// Positive: departs the hub, passes through via.
			src = hub
			stops[rng.Intn(len(stops))] = via
		case i < nPos+nNeg:
			// Negative: must miss at least one conjunct. Half depart the
			// hub but avoid via (hard negatives); half pass via from a
			// different source.
			if i%2 == 0 {
				src = hub
				for k := range stops {
					if stops[k] == via {
						stops[k] = airports[2+rng.Intn(nAirport-2)]
					}
				}
			} else {
				for src == hub {
					src = pick(rng, airports)
				}
				stops[rng.Intn(len(stops))] = via
			}
		default:
			// Background traffic: anything that is not accidentally a
			// positive.
			if src == hub {
				for k := range stops {
					if stops[k] == via {
						stops[k] = airports[2+rng.Intn(nAirport-2)]
					}
				}
			}
		}
		d.MustInsert("flight", fid, src, dst)
		for k, loc := range stops {
			d.MustInsert("leg", fid, loc, seqs[k])
		}
		if isPos(i) {
			pos = append(pos, example("throughLoc", fid))
		} else if i < nPos+nNeg {
			neg = append(neg, example("throughLoc", fid))
		}
	}

	return &Dataset{
		Name:           "flt",
		Target:         "throughLoc",
		TargetAttrs:    []string{"fid"},
		Pos:            pos,
		Neg:            neg,
		Manual:         fltManualBias(hub, via),
		TrueDefinition: "throughLoc(F) :- flight(F," + hub + ",D), leg(F," + via + ",S).",
	}, nil
}

// fltManualBias is the expert bias for FLT: 18 definitions (§6.1). The
// expert knew the hub/via structure mattered, hence the constant modes
// on flight[src] and leg[loc].
func fltManualBias(hub, via string) *bias.Bias {
	return bias.MustParse(`
		% predicate definitions (4)
		throughLoc(Tf)
		airport(Ta,Tr)
		flight(Tf,Ta,Ta)
		leg(Tf,Ta,Ts)
		% mode definitions (14)
		airport(+,-)
		airport(+,#)
		flight(+,-,-)
		flight(+,#,-)
		flight(+,-,#)
		flight(+,#,#)
		flight(-,+,-)
		flight(-,-,+)
		leg(+,-,-)
		leg(+,#,-)
		leg(+,-,#)
		leg(+,#,#)
		leg(-,+,-)
		leg(-,-,+)
	`)
}
