// Package datagen generates the five evaluation datasets of §6.1 —
// UW, HIV, IMDb, FLT and SYS — as deterministic synthetic equivalents.
// Each generator reproduces the paper dataset's schema shape, relative
// relation cardinalities, target-concept structure and example ratios;
// absolute sizes are scaled down (see DESIGN.md §2-3 for the
// substitution rationale) and controlled by Config.Scale.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/bias"
	"repro/internal/db"
	"repro/internal/logic"
)

// Config controls dataset generation.
type Config struct {
	// Scale multiplies entity counts; <=0 selects 1.0 (the default sizes
	// in DESIGN.md §3).
	Scale float64
	// Seed makes generation deterministic; 0 selects 1.
	Seed int64
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// scaled returns n scaled, with a floor of min.
func (c Config) scaled(n int, min int) int {
	v := int(float64(n) * c.Scale)
	if v < min {
		return min
	}
	return v
}

// Dataset is a generated learning task: database, examples, the expert
// ("Manual") language bias, and provenance.
type Dataset struct {
	Name        string
	DB          *db.Database
	Target      string
	TargetAttrs []string
	Pos, Neg    []logic.Literal
	// Manual is the expert-written language bias used by the paper's
	// Manual and Aleph configurations.
	Manual *bias.Bias
	// TrueDefinition documents the generating concept in Datalog.
	TrueDefinition string
}

// TargetArity returns the arity of the target relation.
func (d *Dataset) TargetArity() int { return len(d.TargetAttrs) }

// Generate builds the named dataset ("uw", "hiv", "imdb", "flt", "sys").
func Generate(name string, cfg Config) (*Dataset, error) {
	switch name {
	case "uw":
		return UW(cfg), nil
	case "hiv":
		return HIV(cfg), nil
	case "imdb":
		return IMDb(cfg), nil
	case "flt":
		return FLT(cfg), nil
	case "sys":
		return SYS(cfg), nil
	}
	return nil, fmt.Errorf("datagen: unknown dataset %q", name)
}

// Names lists the datasets in the paper's Table 5 order.
func Names() []string { return []string{"uw", "imdb", "hiv", "flt", "sys"} }

// example builds a ground target literal.
func example(target string, vals ...string) logic.Literal {
	terms := make([]logic.Term, len(vals))
	for i, v := range vals {
		terms[i] = logic.Const(v)
	}
	return logic.Literal{Predicate: target, Terms: terms}
}

// pick returns a uniformly random element.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// id formats a prefixed zero-padded identifier, e.g. id("stud", 7) ==
// "stud_0007". Prefixes keep unrelated value domains disjoint so IND
// discovery finds only the intended dependencies.
func id(prefix string, n int) string { return fmt.Sprintf("%s_%04d", prefix, n) }
