// Package datagen generates the five evaluation datasets of §6.1 —
// UW, HIV, IMDb, FLT and SYS — as deterministic synthetic equivalents.
// Each generator reproduces the paper dataset's schema shape, relative
// relation cardinalities, target-concept structure and example ratios;
// absolute sizes are scaled down (see DESIGN.md §2-3 for the
// substitution rationale) and controlled by Config.Scale.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/bias"
	"repro/internal/db"
	"repro/internal/logic"
)

// Config controls dataset generation.
type Config struct {
	// Scale multiplies entity counts; <=0 selects 1.0 (the default sizes
	// in DESIGN.md §3).
	Scale float64
	// Seed makes generation deterministic; 0 selects 1.
	Seed int64
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// scaled returns n scaled, with a floor of min.
func (c Config) scaled(n int, min int) int {
	v := int(float64(n) * c.Scale)
	if v < min {
		return min
	}
	return v
}

// TupleSink receives generated tuples. *db.Database satisfies it (the
// in-memory path); db.CSVStreamWriter satisfies it for the streamed
// million-tuple path, where materializing the database would defeat
// memory-bounded generation.
type TupleSink interface {
	MustInsert(relation string, values ...string)
}

// SinkFactory builds the sink a generator writes into, given the
// dataset's schema (known before the first tuple). Returning an error
// aborts generation before any tuple is produced.
type SinkFactory func(*db.Schema) (TupleSink, error)

// dedupSink drops exact duplicate rows within a relation. Generators
// draw entity links at random, so bulk relations (taughtBy, genre,
// inRing, event, ...) would otherwise contain duplicate tuples —
// multiset rows that a relation, and the CSV loader (db.LoadCSVDir),
// both reject: a duplicate row silently double-counts coverage and
// value frequencies. Deduplication happens after the RNG draw, so it
// never shifts the random stream: the surviving tuples are identical
// between the in-memory and streamed paths at the same seed and scale.
//
// Rows are tracked as 64-bit FNV-1a hashes (8 bytes/row instead of the
// row text) to keep million-tuple generation memory-bounded; a hash
// collision would drop one legitimate row, with probability ≈ n²/2⁶⁵ —
// about 10⁻⁶ at 10M rows — and deterministically for a given seed.
type dedupSink struct {
	sink TupleSink
	seen map[string]map[uint64]struct{}
}

func newDedupSink(sink TupleSink) *dedupSink {
	return &dedupSink{sink: sink, seen: make(map[string]map[uint64]struct{})}
}

func (d *dedupSink) MustInsert(relation string, values ...string) {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, v := range values {
		for i := 0; i < len(v); i++ {
			h ^= uint64(v[i])
			h *= prime64
		}
		h ^= 0x1f // unit separator: ("ab","c") and ("a","bc") differ
		h *= prime64
	}
	set := d.seen[relation]
	if set == nil {
		set = make(map[uint64]struct{})
		d.seen[relation] = set
	}
	if _, dup := set[h]; dup {
		return
	}
	set[h] = struct{}{}
	d.sink.MustInsert(relation, values...)
}

// Dataset is a generated learning task: database, examples, the expert
// ("Manual") language bias, and provenance.
type Dataset struct {
	Name        string
	DB          *db.Database
	Target      string
	TargetAttrs []string
	Pos, Neg    []logic.Literal
	// Manual is the expert-written language bias used by the paper's
	// Manual and Aleph configurations.
	Manual *bias.Bias
	// TrueDefinition documents the generating concept in Datalog.
	TrueDefinition string
}

// TargetArity returns the arity of the target relation.
func (d *Dataset) TargetArity() int { return len(d.TargetAttrs) }

// Generate builds the named dataset ("uw", "hiv", "imdb", "flt", "sys")
// in memory.
func Generate(name string, cfg Config) (*Dataset, error) {
	var d *db.Database
	ds, err := GenerateTo(name, cfg, func(s *db.Schema) (TupleSink, error) {
		d = db.New(s)
		return d, nil
	})
	if err != nil {
		return nil, err
	}
	ds.DB = d
	return ds, nil
}

// GenerateTo streams the named dataset's tuples into a caller-provided
// sink instead of materializing a database: the returned Dataset carries
// the examples, bias and provenance but a nil DB. This is the
// million-tuple path — pair it with db.NewCSVStreamWriter to write
// relations to disk with bounded memory (see cmd/datasetgen -stream).
// Tuples arrive deduplicated and in a deterministic order for a given
// (name, Scale, Seed), identical to the in-memory path's.
func GenerateTo(name string, cfg Config, mk SinkFactory) (*Dataset, error) {
	switch name {
	case "uw":
		return generateUW(cfg, mk)
	case "hiv":
		return generateHIV(cfg, mk)
	case "imdb":
		return generateIMDb(cfg, mk)
	case "flt":
		return generateFLT(cfg, mk)
	case "sys":
		return generateSYS(cfg, mk)
	}
	return nil, fmt.Errorf("datagen: unknown dataset %q", name)
}

// mustGenerate adapts the in-memory path for the exported per-dataset
// constructors; generation of a known dataset into a database cannot
// fail.
func mustGenerate(name string, cfg Config) *Dataset {
	ds, err := Generate(name, cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

// Names lists the datasets in the paper's Table 5 order.
func Names() []string { return []string{"uw", "imdb", "hiv", "flt", "sys"} }

// example builds a ground target literal.
func example(target string, vals ...string) logic.Literal {
	terms := make([]logic.Term, len(vals))
	for i, v := range vals {
		terms[i] = logic.Const(v)
	}
	return logic.Literal{Predicate: target, Terms: terms}
}

// pick returns a uniformly random element.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// id formats a prefixed zero-padded identifier, e.g. id("stud", 7) ==
// "stud_0007". Prefixes keep unrelated value domains disjoint so IND
// discovery finds only the intended dependencies.
func id(prefix string, n int) string { return fmt.Sprintf("%s_%04d", prefix, n) }
