package datagen

import (
	"math/rand"

	"repro/internal/bias"
	"repro/internal/db"
	"repro/internal/logic"
)

// UW generates the UW-CSE-style departmental database (paper §1, §6.1):
// 9 relations, ≈1.8K tuples at scale 1, 102 positive and 204 negative
// examples of advisedBy(stud, prof).
//
// Generating concept: a student is advised by a professor when they
// co-authored a publication and (for most pairs) the student TAed a
// course the professor taught. A slice of positives carries no structure
// (label noise) and a slice of negatives co-authored without advising
// (hard negatives), so no learner reaches a perfect F-measure — matching
// the paper's UW rows.
func UW(cfg Config) *Dataset { return mustGenerate("uw", cfg) }

func generateUW(cfg Config, mk SinkFactory) (*Dataset, error) {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))

	nStud := cfg.scaled(150, 60)
	nProf := cfg.scaled(40, 16)
	nCourse := cfg.scaled(90, 24)
	nPos := cfg.scaled(102, 40)
	nNeg := 2 * nPos

	s := db.NewSchema()
	s.MustAdd("student", "stud")
	s.MustAdd("professor", "prof")
	s.MustAdd("inPhase", "stud", "phase")
	s.MustAdd("yearsInProgram", "stud", "years")
	s.MustAdd("hasPosition", "prof", "position")
	s.MustAdd("courseLevel", "course", "level")
	s.MustAdd("taughtBy", "course", "prof", "term")
	s.MustAdd("ta", "course", "stud", "term")
	s.MustAdd("publication", "title", "person")
	sink, err := mk(s)
	if err != nil {
		return nil, err
	}
	d := newDedupSink(sink)

	phases := []string{"pre_quals", "post_quals", "post_generals"}
	years := []string{"year_1", "year_2", "year_3", "year_4", "year_5", "year_6"}
	positions := []string{"assistant_prof", "associate_prof", "full_prof"}
	levels := []string{"level_300", "level_400", "level_500"}
	terms := []string{"term_w1", "term_s1", "term_f1", "term_w2", "term_s2", "term_f2"}

	studs := make([]string, nStud)
	for i := range studs {
		studs[i] = id("stud", i)
		d.MustInsert("student", studs[i])
		d.MustInsert("inPhase", studs[i], pick(rng, phases))
		d.MustInsert("yearsInProgram", studs[i], pick(rng, years))
	}
	profs := make([]string, nProf)
	for i := range profs {
		profs[i] = id("prof", i)
		d.MustInsert("professor", profs[i])
		d.MustInsert("hasPosition", profs[i], pick(rng, positions))
	}
	courses := make([]string, nCourse)
	for i := range courses {
		courses[i] = id("course", i)
		d.MustInsert("courseLevel", courses[i], pick(rng, levels))
		// Each course taught by 2-3 professors over random terms.
		for k, n := 0, 2+rng.Intn(2); k < n; k++ {
			d.MustInsert("taughtBy", courses[i], pick(rng, profs), pick(rng, terms))
		}
	}

	nextTitle := 0
	copub := func(st, pr string) {
		title := id("pub", nextTitle)
		nextTitle++
		d.MustInsert("publication", title, st)
		d.MustInsert("publication", title, pr)
	}
	taship := func(st, pr string) {
		course := pick(rng, courses)
		term := pick(rng, terms)
		d.MustInsert("ta", course, st, term)
		d.MustInsert("taughtBy", course, pr, term)
	}

	// Positives: advised pairs (student i advised by professor i mod nProf
	// with stride to spread pairs).
	type pair struct{ s, p string }
	used := make(map[pair]bool)
	var pos []logic.Literal
	for i := 0; i < nPos; i++ {
		st := studs[i%nStud]
		pr := profs[(i*3+rng.Intn(nProf))%nProf]
		pk := pair{st, pr}
		if used[pk] {
			pr = profs[(i*5+1)%nProf]
			pk = pair{st, pr}
			if used[pk] {
				continue
			}
		}
		used[pk] = true
		switch {
		case i%10 == 9:
			// 10% label noise: no structure at all.
		case i%10 >= 7:
			// 20% co-publication only.
			copub(st, pr)
		default:
			// 70% co-publication and TAship; half of these pairs
			// co-author a second paper.
			copub(st, pr)
			if rng.Intn(2) == 0 {
				copub(st, pr)
			}
			taship(st, pr)
		}
		pos = append(pos, example("advisedBy", st, pr))
	}

	// Hard negatives: co-authors who are not advised (≈15% of negatives),
	// then random unadvised pairs.
	var neg []logic.Literal
	for len(neg) < nNeg {
		st := pick(rng, studs)
		pr := pick(rng, profs)
		pk := pair{st, pr}
		if used[pk] {
			continue
		}
		used[pk] = true
		if len(neg) < nNeg/7 {
			copub(st, pr)
		}
		neg = append(neg, example("advisedBy", st, pr))
	}

	// Filler publications: ~40% of students and professors publish solo
	// work, so publication[person] ⊆ student[stud] holds only
	// approximately (the paper's motivating example for approximate
	// INDs) and student[stud] ⊆ publication[person] does not hold.
	for i, st := range studs {
		if i%5 < 3 {
			title := id("pub", nextTitle)
			nextTitle++
			d.MustInsert("publication", title, st)
		}
	}
	for i, pr := range profs {
		if i%5 < 3 {
			title := id("pub", nextTitle)
			nextTitle++
			d.MustInsert("publication", title, pr)
		}
	}
	// Extra TAships without advising (structure noise).
	for i := 0; i < nStud/2; i++ {
		d.MustInsert("ta", pick(rng, courses), pick(rng, studs), pick(rng, terms))
	}

	return &Dataset{
		Name:        "uw",
		Target:      "advisedBy",
		TargetAttrs: []string{"stud", "prof"},
		Pos:         pos,
		Neg:         neg,
		Manual:      uwManualBias(),
		TrueDefinition: "advisedBy(S,P) :- publication(T,S), publication(T,P), " +
			"ta(C,S,Term), taughtBy(C,P,Term).",
	}, nil
}

// uwManualBias is the expert bias for UW: 19 definitions, the count the
// paper reports (§6.1).
func uwManualBias() *bias.Bias {
	return bias.MustParse(`
		% predicate definitions (11)
		advisedBy(Ts,Tp)
		student(Ts)
		professor(Tp)
		inPhase(Ts,Tphase)
		yearsInProgram(Ts,Tyear)
		hasPosition(Tp,Tposition)
		courseLevel(Tcourse,Tlevel)
		taughtBy(Tcourse,Tp,Tterm)
		ta(Tcourse,Ts,Tterm)
		publication(Ttitle,Ts)
		publication(Ttitle,Tp)
		% mode definitions (8)
		student(+)
		professor(+)
		inPhase(+,#)
		hasPosition(+,-)
		taughtBy(+,-,-)
		ta(-,+,-)
		publication(-,+)
		publication(+,-)
	`)
}
