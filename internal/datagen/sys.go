package datagen

import (
	"math/rand"

	"repro/internal/bias"
	"repro/internal/db"
	"repro/internal/logic"
)

// SYS generates the server-process dataset (§6.1): a single wide
// relation of file-access events, provided in the paper by a private
// software company. The target malicious(proc) captures the paper's
// "patterns of file accesses by malicious processes": a process that
// reads the credential store and also writes to the network spool — a
// self-join on the one relation with two file constants and an operation
// constant each. As in the paper, negatives far outnumber positives
// (malicious activity is rare).
func SYS(cfg Config) *Dataset { return mustGenerate("sys", cfg) }

func generateSYS(cfg Config, mk SinkFactory) (*Dataset, error) {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed + 5))

	nProc := cfg.scaled(1600, 300)
	nPos := cfg.scaled(80, 30)
	nNeg := cfg.scaled(400, 150) // ~1:5, echoing the paper's 150:2000 skew

	s := db.NewSchema()
	s.MustAdd("event", "proc", "image", "file", "op", "outcome")
	sink, err := mk(s)
	if err != nil {
		return nil, err
	}
	d := newDedupSink(sink)

	images := []string{"img_httpd", "img_sshd", "img_cron", "img_backup", "img_update", "img_shell"}
	files := []string{
		"f_tmp_cache", "f_var_log", "f_home_doc", "f_etc_conf",
		"f_usr_lib", "f_data_db", "f_cred_store", "f_net_spool",
	}
	ops := []string{"read", "write", "stat", "exec"}
	outcomes := []string{"ok", "ok", "ok", "denied"}

	isPositive := make([]bool, nProc)
	perm := rng.Perm(nProc)
	for i := 0; i < nPos && i < nProc; i++ {
		isPositive[perm[i]] = true
	}

	addEvent := func(proc, image, file, op string) {
		d.MustInsert("event", proc, image, file, op, pick(rng, outcomes))
	}

	var pos, neg []logic.Literal
	for pi := 0; pi < nProc; pi++ {
		proc := id("proc", pi)
		image := pick(rng, images)
		// Background events.
		for k, n := 0, 6+rng.Intn(8); k < n; k++ {
			file := pick(rng, files)
			op := pick(rng, ops)
			if !isPositive[pi] {
				// A negative may touch the credential store or the net
				// spool, but never holds BOTH halves of the malicious
				// pattern: suppress one side per process.
				if pi%2 == 0 && file == "f_cred_store" && op == "read" {
					op = "stat"
				}
				if pi%2 == 1 && file == "f_net_spool" && op == "write" {
					op = "read"
				}
			}
			addEvent(proc, image, file, op)
		}
		if isPositive[pi] {
			addEvent(proc, image, "f_cred_store", "read")
			addEvent(proc, image, "f_net_spool", "write")
		}
	}

	for pi := 0; pi < nProc && (len(pos) < nPos || len(neg) < nNeg); pi++ {
		if isPositive[pi] && len(pos) < nPos {
			pos = append(pos, example("malicious", id("proc", pi)))
		} else if !isPositive[pi] && len(neg) < nNeg {
			neg = append(neg, example("malicious", id("proc", pi)))
		}
	}

	return &Dataset{
		Name:        "sys",
		Target:      "malicious",
		TargetAttrs: []string{"proc"},
		Pos:         pos,
		Neg:         neg,
		Manual:      sysManualBias(),
		TrueDefinition: "malicious(P) :- event(P,I1,f_cred_store,read,R1), " +
			"event(P,I2,f_net_spool,write,R2).",
	}, nil
}

// sysManualBias is the expert bias for SYS: 9 definitions (§6.1) — small
// because everything lives in one relation, but the paper notes it still
// took long expert sessions with security analysts to find which columns
// should be constants.
func sysManualBias() *bias.Bias {
	return bias.MustParse(`
		% predicate definitions (2)
		malicious(Tp)
		event(Tp,Ti,Tf,To,Tr)
		% mode definitions (7)
		event(+,-,-,-,-)
		event(+,#,-,-,-)
		event(+,-,#,-,-)
		event(+,-,-,#,-)
		event(+,-,#,#,-)
		event(+,-,-,-,#)
		event(+,#,#,#,-)
	`)
}
