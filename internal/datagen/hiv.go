package datagen

import (
	"math/rand"

	"repro/internal/bias"
	"repro/internal/db"
	"repro/internal/logic"
)

// HIV generates the chemical-compound dataset (§6.1): 5 relations
// describing compounds, atoms, bonds and rings. The target antiHIV(comp)
// holds when the compound contains a nitroso-like motif: a nitrogen atom
// double-bonded to an oxygen atom. The motif needs a three-literal join
// chain with element constants, so constants and multi-hop joins are
// both required — mirroring why the paper's HIV models are complex and
// benefit from random sampling (§6.3).
func HIV(cfg Config) *Dataset { return mustGenerate("hiv", cfg) }

func generateHIV(cfg Config, mk SinkFactory) (*Dataset, error) {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	nComp := cfg.scaled(300, 120)
	nPos := cfg.scaled(100, 40)
	nNeg := 2 * nPos

	s := db.NewSchema()
	s.MustAdd("compound", "comp")
	s.MustAdd("atm", "atom", "comp", "elem")
	s.MustAdd("bnd", "bond", "atom1", "atom2", "btype")
	s.MustAdd("ring", "ringid", "comp", "rtype")
	s.MustAdd("inRing", "atom", "ringid")
	sink, err := mk(s)
	if err != nil {
		return nil, err
	}
	d := newDedupSink(sink)

	elements := []string{"c", "c", "c", "c", "c", "h", "h", "o", "n", "s", "cl", "li"}
	btypes := []string{"single", "single", "single", "double", "aromatic"}
	rtypes := []string{"benzene", "pyridine", "furan"}

	// isPositive marks the compounds that get the motif.
	isPositive := make([]bool, nComp)
	perm := rng.Perm(nComp)
	for i := 0; i < nPos && i < nComp; i++ {
		isPositive[perm[i]] = true
	}

	nextAtom, nextBond, nextRing := 0, 0, 0
	for ci := 0; ci < nComp; ci++ {
		comp := id("comp", ci)
		d.MustInsert("compound", comp)
		nAtoms := 8 + rng.Intn(10)
		atoms := make([]string, nAtoms)
		elems := make([]string, nAtoms)
		for ai := range atoms {
			atoms[ai] = id("atom", nextAtom)
			nextAtom++
			elems[ai] = pick(rng, elements)
			d.MustInsert("atm", atoms[ai], comp, elems[ai])
		}
		// Chain bonds plus a few extras. Negatives keep n and o atoms
		// (so no single literal separates the classes) but any bond that
		// would complete the n=o motif is downgraded to single.
		addBond := func(a1, a2 int, bt string) {
			nitroso := (elems[a1] == "n" && elems[a2] == "o") ||
				(elems[a1] == "o" && elems[a2] == "n")
			if !isPositive[ci] && nitroso && bt == "double" {
				bt = "single"
			}
			d.MustInsert("bnd", id("bond", nextBond), atoms[a1], atoms[a2], bt)
			nextBond++
		}
		for ai := 1; ai < nAtoms; ai++ {
			addBond(ai-1, ai, pick(rng, btypes))
		}
		for k := 0; k < 3; k++ {
			addBond(rng.Intn(nAtoms), rng.Intn(nAtoms), pick(rng, btypes))
		}
		if isPositive[ci] {
			// Inject the motif: a fresh n atom double-bonded to a fresh o.
			na := id("atom", nextAtom)
			nextAtom++
			d.MustInsert("atm", na, comp, "n")
			oa := id("atom", nextAtom)
			nextAtom++
			d.MustInsert("atm", oa, comp, "o")
			d.MustInsert("bnd", id("bond", nextBond), na, oa, "double")
			nextBond++
		}
		// Rings.
		for k, n := 0, rng.Intn(3); k < n; k++ {
			ringID := id("ring", nextRing)
			nextRing++
			d.MustInsert("ring", ringID, comp, pick(rng, rtypes))
			for j := 0; j < 3; j++ {
				d.MustInsert("inRing", atoms[rng.Intn(nAtoms)], ringID)
			}
		}
	}

	var pos, neg []logic.Literal
	for ci := 0; ci < nComp && (len(pos) < nPos || len(neg) < nNeg); ci++ {
		if isPositive[ci] && len(pos) < nPos {
			pos = append(pos, example("antiHIV", id("comp", ci)))
		} else if !isPositive[ci] && len(neg) < nNeg {
			neg = append(neg, example("antiHIV", id("comp", ci)))
		}
	}

	return &Dataset{
		Name:        "hiv",
		Target:      "antiHIV",
		TargetAttrs: []string{"comp"},
		Pos:         pos,
		Neg:         neg,
		Manual:      hivManualBias(),
		TrueDefinition: "antiHIV(C) :- atm(A1,C,n), bnd(B,A1,A2,double), " +
			"atm(A2,C,o).",
	}, nil
}

// hivManualBias is the expert bias for HIV: 14 definitions (§6.1).
func hivManualBias() *bias.Bias {
	return bias.MustParse(`
		% predicate definitions (6)
		antiHIV(Tc)
		compound(Tc)
		atm(Ta,Tc,Te)
		bnd(Tb,Ta,Ta,Tbt)
		ring(Tr,Tc,Trt)
		inRing(Ta,Tr)
		% mode definitions (8)
		compound(+)
		atm(-,+,#)
		atm(+,-,-)
		atm(+,-,#)
		bnd(-,+,-,#)
		bnd(-,-,+,#)
		ring(-,+,#)
		inRing(+,-)
	`)
}
