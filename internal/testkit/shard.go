package testkit

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	autobias "repro"
	"repro/internal/faultpoint"
	"repro/internal/report"
)

// ShardFleet is a set of in-process shard workers booted for one
// learning problem: real HTTP servers (httptest) wrapping real worker
// engines, addressable by the coordinator exactly like out-of-process
// workers — minus the process boundary, which the multi-process smoke
// test covers separately.
type ShardFleet struct {
	// URLs is per-shard coordinator addressing, replicas joined with '|'
	// — pass it straight to autobias.ShardOptions.Workers.
	URLs    []string
	servers []*httptest.Server
}

// Close shuts every worker down.
func (f *ShardFleet) Close() {
	for _, s := range f.servers {
		s.Close()
	}
}

// StartShardFleet boots one in-process worker per id in layout, where
// layout[i] holds shard i's replica ids (e.g. [][]string{{"s0a","s0b"},
// {"s1"}} is two shards, the first with two replicas). Every worker is
// built from the same task and options the coordinating run will use,
// as the fingerprint contract requires.
func StartShardFleet(task autobias.Task, opts autobias.Options, layout [][]string) (*ShardFleet, error) {
	return StartShardFleetLegacy(task, opts, layout, nil)
}

// StartShardFleetLegacy boots a fleet like StartShardFleet, except that
// shards whose index is in legacyShards serve only the v1 wire protocol
// — their /v2/coverage answers 404, exactly like a worker built before
// the batched protocol existed. Mixed-fleet tests use it to prove the
// coordinator's per-replica protocol negotiation: v2 rounds against new
// workers, transparent per-candidate downgrade against old ones, same
// theory either way.
func StartShardFleetLegacy(task autobias.Task, opts autobias.Options, layout [][]string, legacyShards map[int]bool) (*ShardFleet, error) {
	f := &ShardFleet{}
	for i, ids := range layout {
		entry := ""
		for j, id := range ids {
			w, err := autobias.NewShardWorker(task, opts, id, autobias.ShardWorkerOptions{})
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("testkit: shard worker %s: %w", id, err)
			}
			h := http.Handler(w.Handler())
			if legacyShards[i] {
				inner := h
				h = http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
					if r.URL.Path == "/v2/coverage" {
						http.NotFound(rw, r)
						return
					}
					inner.ServeHTTP(rw, r)
				})
			}
			s := httptest.NewServer(h)
			f.servers = append(f.servers, s)
			if j > 0 {
				entry += "|"
			}
			entry += s.URL
		}
		f.URLs = append(f.URLs, entry)
	}
	return f, nil
}

// errShardCrash is the injected worker-death error for crash legs. It
// deliberately does not wrap a context error: a crashed worker must
// look like infrastructure failure, not like the run being cancelled.
var errShardCrash = errors.New("testkit: injected shard crash")

// ShardCrashResume verifies the distributed anytime contract: a
// distributed run whose entire fleet dies mid-flight — with local
// fallback disabled, so the loss is unrecoverable — must degrade
// gracefully to a valid partial theory (Cancelled, ShardLost and
// CoverageAbandoned recorded), and a resumed run over the positives
// that partial theory left uncovered must stitch to the uninterrupted
// reference bit for bit.
//
// The reference is a single-process pure-mode run: that is what a
// distributed run is bit-identical to (shared-builder provenance
// samples different BCs). The fleet dies deterministically: the
// crashAfter-th coverage RPC send — and every send after it — fails, so
// wherever the covering loop is at that point, its next coverage count
// walks the whole (dead) failover ladder and aborts the run.
//
// ref, when non-nil, is a previously-computed pure-mode reference leg of
// the same (task, opts) — callers scanning several crash points pass it
// to avoid re-learning the reference each time.
//
// Like CancelResume, the helper arms package-global fault injection and
// requires len(task.Pos) < 10.
func ShardCrashResume(ctx context.Context, task autobias.Task, opts autobias.Options, layout [][]string, crashAfter int, ref *Leg) (CancelResumeReport, error) {
	if len(task.Pos) >= 10 {
		return CancelResumeReport{}, fmt.Errorf("testkit: shard-crash-resume needs < 10 positives, got %d", len(task.Pos))
	}
	if crashAfter < 2 {
		return CancelResumeReport{}, fmt.Errorf("testkit: crashAfter must be >= 2, got %d", crashAfter)
	}
	if opts.Shard != nil {
		return CancelResumeReport{}, fmt.Errorf("testkit: pass the fleet via layout; opts.Shard is set by the helper")
	}

	rep := CancelResumeReport{}
	refOpts := opts
	refOpts.PureGroundBCs = true
	var err error
	if ref != nil {
		rep.Reference = *ref
	} else {
		rep.Reference, err = Run(ctx, task, refOpts, "reference(pure)")
		if err != nil {
			return rep, err
		}
	}

	fleet, err := StartShardFleet(task, opts, layout)
	if err != nil {
		return rep, err
	}
	defer fleet.Close()

	crashOpts := opts
	crashOpts.Shard = &autobias.ShardOptions{
		Workers:              fleet.URLs,
		Retries:              1,
		RequestTimeout:       5 * time.Second,
		DisableLocalFallback: true,
	}
	// From the crashAfter-th send on, every coverage RPC fails — the
	// fleet is gone for good, and with fallback disabled the run must
	// take the anytime exit.
	faultpoint.Enable("shard.rpc.send", faultpoint.Fault{Err: errShardCrash, After: crashAfter})
	rep.Partial, err = Run(ctx, task, crashOpts, "shard-crashed")
	faultpoint.Reset()
	if err != nil {
		return rep, err
	}
	if !rep.Partial.Cancelled {
		return rep, fmt.Errorf("testkit: crash leg was not interrupted (crashAfter=%d beyond the run's sends?)", crashAfter)
	}
	if rep.Partial.Clauses == 0 {
		return rep, fmt.Errorf("testkit: crash leg learned no clauses before the fleet died (crashAfter=%d too early)", crashAfter)
	}
	r := rep.Partial.Result.Report
	if r.Count(report.ShardLost) == 0 {
		rep.Diffs = append(rep.Diffs, "crash leg recorded no ShardLost event")
	}
	if r.Count(report.CoverageAbandoned) == 0 {
		rep.Diffs = append(rep.Diffs, "crash leg recorded no CoverageAbandoned event")
	}
	if !r.Degraded() {
		rep.Diffs = append(rep.Diffs, "crash leg does not report Degraded despite losing its shards")
	}

	// Resume single-process (the fleet is "gone") in pure mode, over the
	// positives the partial theory left uncovered.
	var remaining []autobias.Example
	for _, e := range task.Pos {
		ok, err := rep.Partial.Result.Covers(e)
		if err != nil {
			return rep, fmt.Errorf("testkit: scoring partial theory: %w", err)
		}
		if !ok {
			remaining = append(remaining, e)
		}
	}
	resumeTask := task
	resumeTask.Pos = remaining
	if len(remaining) == 0 {
		rep.Resumed = Leg{Label: "resumed", Snapshot: autobias.MetricsSnapshot{}}
	} else {
		rep.Resumed, err = Run(ctx, resumeTask, refOpts, "resumed")
		if err != nil {
			return rep, err
		}
	}

	rep.Stitched = stitch(rep.Partial.Theory, rep.Resumed.Theory)
	if rep.Stitched != rep.Reference.Theory {
		rep.Diffs = append(rep.Diffs, fmt.Sprintf("stitched theory diverges from reference:\n--- reference\n%s\n--- stitched (fleet died after %d sends + resumed over %d positives)\n%s",
			rep.Reference.Theory, crashAfter, len(remaining), rep.Stitched))
	}
	if got, want := rep.Partial.Clauses+rep.Resumed.Clauses, rep.Reference.Clauses; got != want {
		rep.Diffs = append(rep.Diffs, fmt.Sprintf("kept-clause totals diverge: partial %d + resumed %d != reference %d",
			rep.Partial.Clauses, rep.Resumed.Clauses, want))
	}
	return rep, nil
}
