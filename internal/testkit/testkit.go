// Package testkit is the differential test harness for the learning
// pipeline: it runs the same learning problem under different execution
// strategies — worker counts, and cancelled-then-resumed — and reports
// any divergence in the learned theory or in the deterministic portion
// of the run's instrumentation.
//
// The harness exists because the system's headline concurrency claim
// (DESIGN.md, "Concurrency architecture") is that the Workers knob
// changes wall-clock only: the theory and every deterministic counter
// (bottom.*, ind.*, learn.*, coverage.bc_built, eval.examples_scored)
// must be bit-identical at any worker count. Gauges — coverage.tests,
// subsume.*, cache hit/miss splits, per-worker utilization — legitimately
// vary with scheduling and are excluded (metrics.Snapshot keeps the two
// classes apart, so the comparison is just DeterministicDiff).
//
// For cancelled-then-resumed runs the invariant is necessarily weaker:
// the interrupted clause search is redone from scratch on resume, so
// effort counters (learn.rounds, learn.candidates, bottom.*) double-count
// that work. What must survive the stitch is the output: the partial
// theory plus the resumed theory, in order, is bit-identical to the
// uninterrupted theory, and the kept-clause totals agree.
package testkit

import (
	"context"
	"fmt"
	"strings"

	autobias "repro"
	"repro/internal/faultpoint"
	"repro/internal/metrics"
)

// Leg is one instrumented execution of a learning problem.
type Leg struct {
	Label     string
	Theory    string
	Clauses   int
	Snapshot  autobias.MetricsSnapshot
	TimedOut  bool
	Cancelled bool
	// Result keeps the full facade result for follow-up queries (e.g.
	// per-example coverage when computing a resume's remaining positives).
	Result *autobias.Result
}

// Run learns the task once with a fresh collector and returns the leg.
// The caller's opts are taken as-is except for instrumentation, which is
// always enabled so legs are comparable.
func Run(ctx context.Context, task autobias.Task, opts autobias.Options, label string) (Leg, error) {
	opts.Collector = autobias.NewMetricsCollector()
	res, err := autobias.LearnCtx(ctx, task, opts)
	if err != nil {
		return Leg{}, fmt.Errorf("testkit: leg %s: %w", label, err)
	}
	return Leg{
		Label:     label,
		Theory:    res.Definition.String(),
		Clauses:   res.Definition.Len(),
		Snapshot:  *res.Metrics,
		TimedOut:  res.TimedOut,
		Cancelled: res.Cancelled,
		Result:    res,
	}, nil
}

// Differential runs the task once per worker count and compares every
// leg against the first: theories must be bit-identical and the
// deterministic counter/histogram totals equal. The returned diffs are
// human-readable divergence lines, empty when the runs agree.
func Differential(ctx context.Context, task autobias.Task, opts autobias.Options, workers []int) ([]Leg, []string, error) {
	if len(workers) < 2 {
		return nil, nil, fmt.Errorf("testkit: differential needs at least 2 worker counts, got %v", workers)
	}
	legs := make([]Leg, 0, len(workers))
	for _, w := range workers {
		o := opts
		o.Workers = w
		leg, err := Run(ctx, task, o, fmt.Sprintf("workers=%d", w))
		if err != nil {
			return nil, nil, err
		}
		legs = append(legs, leg)
	}
	var diffs []string
	ref := legs[0]
	for _, leg := range legs[1:] {
		if leg.Theory != ref.Theory {
			diffs = append(diffs, fmt.Sprintf("%s vs %s: theories diverge:\n--- %s\n%s\n--- %s\n%s",
				ref.Label, leg.Label, ref.Label, ref.Theory, leg.Label, leg.Theory))
		}
		for _, d := range ref.Snapshot.DeterministicDiff(leg.Snapshot) {
			diffs = append(diffs, fmt.Sprintf("%s vs %s: %s", ref.Label, leg.Label, d))
		}
	}
	return legs, diffs, nil
}

// CancelResumeReport is the outcome of a cancelled-then-resumed replay.
type CancelResumeReport struct {
	Reference Leg
	Partial   Leg
	Resumed   Leg
	// Stitched is the partial theory followed by the resumed theory.
	Stitched string
	// Diffs is empty when the stitch reproduces the reference bit for bit
	// and the kept-clause totals agree.
	Diffs []string
}

// cancelSite is the faultpoint every bottom-clause construction passes
// through; injecting context.Canceled there makes the learner take its
// graceful-cancellation path at an exact, scheduler-independent point.
const cancelSite = "bottom.construct"

// CancelResume verifies the anytime contract end to end: a run cancelled
// mid-flight plus a second run over the positives its partial theory
// left uncovered must together produce exactly the theory of an
// uninterrupted run.
//
// The cancellation is injected deterministically: the cancelAfter-th
// bottom-clause construction fails with context.Canceled (via
// faultpoint), which the learner treats as a graceful cancel. Pick
// cancelAfter between 2 and the reference run's bottom.constructions
// total so the cut lands mid-run; the harness rejects a cancel leg that
// finished clean (nothing was interrupted) or learned nothing (the
// resume would trivially redo the whole run).
//
// The resumed leg re-learns with the same options over the remaining
// positives, so the learner's minimum-criterion threshold — which
// depends on the positive-example count crossing 10 — must not differ
// between legs; the harness enforces the safe precondition
// len(task.Pos) < 10 (both legs then use the same threshold).
//
// ref, when non-nil, is a previously-computed uninterrupted leg of the
// same (task, opts) — callers scanning several cut points pass their
// probe run to avoid re-learning the reference each time.
//
// CancelResume arms and resets package-global fault injection, so it
// must not run concurrently with other faultpoint users.
func CancelResume(ctx context.Context, task autobias.Task, opts autobias.Options, cancelAfter int, ref *Leg) (CancelResumeReport, error) {
	if len(task.Pos) >= 10 {
		return CancelResumeReport{}, fmt.Errorf("testkit: cancel-resume needs < 10 positives (minimum-criterion threshold must match across legs), got %d", len(task.Pos))
	}
	if cancelAfter < 2 {
		return CancelResumeReport{}, fmt.Errorf("testkit: cancelAfter must be >= 2 (1 would cancel before any work), got %d", cancelAfter)
	}
	rep := CancelResumeReport{}
	var err error
	if ref != nil {
		rep.Reference = *ref
	} else {
		rep.Reference, err = Run(ctx, task, opts, "reference")
		if err != nil {
			return rep, err
		}
	}

	// Cancel leg: the cancelAfter-th construction — and only it — fails.
	// Times=1 keeps the window to a single hit so the run's remaining
	// constructions (final coverage accounting) proceed normally.
	faultpoint.Enable(cancelSite, faultpoint.Fault{Err: context.Canceled, After: cancelAfter, Times: 1})
	rep.Partial, err = Run(ctx, task, opts, "cancelled")
	faultpoint.Reset()
	if err != nil {
		return rep, err
	}
	if !rep.Partial.Cancelled {
		return rep, fmt.Errorf("testkit: cancel leg was not interrupted (cancelAfter=%d exceeds the run's %d constructions?)", cancelAfter, constructions(rep.Reference.Snapshot))
	}
	if rep.Partial.Clauses == 0 {
		return rep, fmt.Errorf("testkit: cancel leg learned no clauses before the cut (cancelAfter=%d too early); resume would trivially redo the whole run", cancelAfter)
	}

	// Resume over the positives the partial theory does not cover, in
	// their original order (the sequential-covering loop preserves it).
	var remaining []autobias.Example
	for _, e := range task.Pos {
		ok, err := rep.Partial.Result.Covers(e)
		if err != nil {
			return rep, fmt.Errorf("testkit: scoring partial theory: %w", err)
		}
		if !ok {
			remaining = append(remaining, e)
		}
	}
	resumeTask := task
	resumeTask.Pos = remaining
	if len(remaining) == 0 {
		// The partial theory already covers everything; the resumed leg is
		// empty by construction.
		rep.Resumed = Leg{Label: "resumed", Snapshot: autobias.MetricsSnapshot{}}
	} else {
		rep.Resumed, err = Run(ctx, resumeTask, opts, "resumed")
		if err != nil {
			return rep, err
		}
	}

	rep.Stitched = stitch(rep.Partial.Theory, rep.Resumed.Theory)
	if rep.Stitched != rep.Reference.Theory {
		rep.Diffs = append(rep.Diffs, fmt.Sprintf("stitched theory diverges from reference:\n--- reference\n%s\n--- stitched (cancelled after %d constructions + resumed over %d positives)\n%s",
			rep.Reference.Theory, cancelAfter, len(remaining), rep.Stitched))
	}
	if got, want := rep.Partial.Clauses+rep.Resumed.Clauses, rep.Reference.Clauses; got != want {
		rep.Diffs = append(rep.Diffs, fmt.Sprintf("kept-clause totals diverge: partial %d + resumed %d != reference %d",
			rep.Partial.Clauses, rep.Resumed.Clauses, want))
	}
	return rep, nil
}

// stitch concatenates two rendered theories, tolerating empty legs.
func stitch(a, b string) string {
	a, b = strings.TrimRight(a, "\n"), strings.TrimRight(b, "\n")
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "\n" + b
}

func constructions(s autobias.MetricsSnapshot) int64 {
	return s.Counters[metrics.BottomConstructions.Name()]
}
