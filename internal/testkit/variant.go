package testkit

import (
	"context"
	"fmt"

	autobias "repro"
	"repro/internal/schematx"
)

// VariantConfig drives one cross-variant differential run: the schema
// transforms to stress, the worker counts every variant must be
// bit-identical across, an optional shard layout for a distributed leg,
// and the held-out examples on which every variant's theory must agree
// with the base schema's theory.
type VariantConfig struct {
	// Transforms are the schema rewrites to compare against the base
	// schema. Each is round-trip-proved before any learning happens — an
	// unproven variant never reaches the learner.
	Transforms []schematx.Transform
	// Workers are the worker counts for the per-variant differential
	// (at least two, e.g. 1/4/8).
	Workers []int
	// ShardLayout, when non-nil, boots an in-process worker fleet per
	// variant (replica ids per shard, see StartShardFleet) and requires
	// the sharded run's theory to be bit-identical to the variant's
	// local reference.
	ShardLayout [][]string
	// HeldOut are the examples scored under every variant's learned
	// theory. They are phrased against the target relation, which no
	// transform rewrites, so the same literals are valid in every
	// variant.
	HeldOut []autobias.Example
}

// VariantLeg is one schema's outcome inside a cross-variant run.
type VariantLeg struct {
	// Name is "base" or the transform name that produced the schema.
	Name string
	// Leg is the variant's reference execution (first worker count).
	Leg Leg
	// Verdicts holds the reference theory's coverage verdict for each
	// held-out example, aligned with VariantConfig.HeldOut.
	Verdicts []bool
}

// VariantReport is the outcome of a cross-variant differential run.
type VariantReport struct {
	// Legs holds the base leg first, then one leg per transform.
	Legs []VariantLeg
	// Diffs is empty when every variant is internally deterministic
	// (across worker counts and the sharded leg) and externally
	// coverage-equivalent to the base schema on the held-out examples.
	Diffs []string
}

// CrossVariantDifferential is the schema-independence harness: it
// round-trip-proves each transform, learns the same problem on the base
// schema and on every variant, and checks
//
//  1. within each schema: theories bit-identical across cfg.Workers and
//     (when a shard layout is given) across the sharded transport, and
//  2. across schemas: the learned theories agree exactly with the base
//     theory on every held-out example — the paper's claim that the
//     concept, not the normalization, determines what is learned.
//
// Theories on different schemas mention different predicates, so no
// textual comparison is possible across variants; held-out coverage is
// the semantic equivalence check. opts must have PureGroundBCs set
// (sharded runs are bit-identical only to pure-mode local runs) and
// MethodManual (variants carry their bias in Task.Manual; any other
// method would silently ignore the rewrite and test nothing).
func CrossVariantDifferential(ctx context.Context, task autobias.Task, opts autobias.Options, cfg VariantConfig) (*VariantReport, error) {
	if opts.Method != autobias.MethodManual {
		return nil, fmt.Errorf("testkit: cross-variant differential requires MethodManual, got %q", opts.Method)
	}
	if !opts.PureGroundBCs {
		return nil, fmt.Errorf("testkit: cross-variant differential requires PureGroundBCs (the sharded leg is only bit-identical to pure-mode local runs)")
	}
	if len(cfg.HeldOut) == 0 {
		return nil, fmt.Errorf("testkit: cross-variant differential needs held-out examples")
	}

	type run struct {
		name string
		task autobias.Task
	}
	runs := []run{{name: "base", task: task}}
	src := schematx.Source{DB: task.DB, Bias: task.Manual, Target: task.Target, TargetAttrs: task.TargetAttrs}
	for _, tr := range cfg.Transforms {
		v, err := schematx.RoundTrip(tr, src)
		if err != nil {
			return nil, err
		}
		vt := task
		vt.DB = v.DB
		vt.Manual = v.Bias
		runs = append(runs, run{name: v.Name, task: vt})
	}

	rep := &VariantReport{}
	for _, r := range runs {
		legs, diffs, err := Differential(ctx, r.task, opts, cfg.Workers)
		if err != nil {
			return rep, fmt.Errorf("testkit: variant %s: %w", r.name, err)
		}
		for _, d := range diffs {
			rep.Diffs = append(rep.Diffs, fmt.Sprintf("variant %s: %s", r.name, d))
		}
		ref := legs[0]

		if cfg.ShardLayout != nil {
			fleet, err := StartShardFleet(r.task, opts, cfg.ShardLayout)
			if err != nil {
				return rep, fmt.Errorf("testkit: variant %s: %w", r.name, err)
			}
			shOpts := opts
			shOpts.Shard = &autobias.ShardOptions{Workers: fleet.URLs}
			sharded, err := Run(ctx, r.task, shOpts, r.name+"/sharded")
			fleet.Close()
			if err != nil {
				return rep, fmt.Errorf("testkit: variant %s: %w", r.name, err)
			}
			if sharded.Theory != ref.Theory {
				rep.Diffs = append(rep.Diffs, fmt.Sprintf(
					"variant %s: sharded theory diverges from local reference:\n--- local\n%s\n--- sharded\n%s",
					r.name, ref.Theory, sharded.Theory))
			}
		}

		verdicts := make([]bool, len(cfg.HeldOut))
		for i, e := range cfg.HeldOut {
			v, err := ref.Result.Covers(e)
			if err != nil {
				return rep, fmt.Errorf("testkit: variant %s: scoring held-out %s: %w", r.name, e.String(), err)
			}
			verdicts[i] = v
		}
		rep.Legs = append(rep.Legs, VariantLeg{Name: r.name, Leg: ref, Verdicts: verdicts})
	}

	// Cross-schema equivalence: exact verdict agreement with the base
	// schema, reported per diverging example with both theories so a
	// failure is diagnosable without rerunning.
	base := rep.Legs[0]
	for _, vl := range rep.Legs[1:] {
		disagreements := 0
		for i, e := range cfg.HeldOut {
			if vl.Verdicts[i] == base.Verdicts[i] {
				continue
			}
			disagreements++
			rep.Diffs = append(rep.Diffs, fmt.Sprintf(
				"variant %s: held-out %s: base covers=%v, variant covers=%v",
				vl.Name, e.String(), base.Verdicts[i], vl.Verdicts[i]))
		}
		if disagreements > 0 {
			rep.Diffs = append(rep.Diffs, fmt.Sprintf(
				"variant %s: %d/%d held-out verdicts diverge\n--- base theory\n%s\n--- variant theory\n%s",
				vl.Name, disagreements, len(cfg.HeldOut), base.Leg.Theory, vl.Leg.Theory))
		}
	}
	return rep, nil
}
