// Package benchenv captures the execution environment a benchmark run
// was recorded under, in the field layout the committed BENCH_*.json
// trajectory files use. Every new BENCH entry must carry this metadata
// (go_version included — the toolchain moves performance as much as the
// hardware does); benchmarks log Capture() so the numbers a run prints
// arrive next to the environment that produced them.
package benchenv

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
)

// Env is the environment block of one BENCH_*.json run entry.
type Env struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

// Capture reads the current process's environment.
func Capture() Env {
	return Env{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// String renders the env as the JSON fragment to paste into a
// BENCH_*.json entry.
func (e Env) String() string {
	b, _ := json.Marshal(e)
	return string(b)
}

// MatrixProcs is the multi-core bench matrix: the GOMAXPROCS values a
// matrix benchmark records per entry. Values above NumCPU are kept —
// pinning more Ps than cores is legal and measures scheduler
// oversubscription; every entry records num_cpu next to gomaxprocs so
// readers can tell scaling cells from oversubscribed ones.
func MatrixProcs() []int {
	return []int{1, 4, 8}
}

// RunProcs runs fn as one sub-benchmark per entry in procs, pinning
// GOMAXPROCS for the duration of each cell (restored afterwards) and
// naming the cell "procs=N" so BENCH_*.json entries can record the
// matrix dimension. fn must capture its own setup; the pin happens
// before fn runs, so pools sized off GOMAXPROCS inside fn see the
// pinned value.
func RunProcs(b *testing.B, procs []int, fn func(b *testing.B)) {
	for _, p := range procs {
		p := p
		b.Run(fmt.Sprintf("procs=%d", p), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(p)
			defer runtime.GOMAXPROCS(prev)
			fn(b)
		})
	}
}
