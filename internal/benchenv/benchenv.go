// Package benchenv captures the execution environment a benchmark run
// was recorded under, in the field layout the committed BENCH_*.json
// trajectory files use. Every new BENCH entry must carry this metadata
// (go_version included — the toolchain moves performance as much as the
// hardware does); benchmarks log Capture() so the numbers a run prints
// arrive next to the environment that produced them.
package benchenv

import (
	"encoding/json"
	"runtime"
)

// Env is the environment block of one BENCH_*.json run entry.
type Env struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

// Capture reads the current process's environment.
func Capture() Env {
	return Env{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// String renders the env as the JSON fragment to paste into a
// BENCH_*.json entry.
func (e Env) String() string {
	b, _ := json.Marshal(e)
	return string(b)
}
