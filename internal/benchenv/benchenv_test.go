package benchenv

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCaptureFillsEveryField(t *testing.T) {
	e := Capture()
	if !strings.HasPrefix(e.GoVersion, "go") {
		t.Errorf("GoVersion %q", e.GoVersion)
	}
	if e.NumCPU < 1 || e.GOMAXPROCS < 1 {
		t.Errorf("NumCPU=%d GOMAXPROCS=%d", e.NumCPU, e.GOMAXPROCS)
	}
	if e.GOOS == "" || e.GOARCH == "" {
		t.Errorf("GOOS=%q GOARCH=%q", e.GOOS, e.GOARCH)
	}
}

func TestStringIsBenchJSONFragment(t *testing.T) {
	var m map[string]any
	if err := json.Unmarshal([]byte(Capture().String()), &m); err != nil {
		t.Fatal(err)
	}
	// The keys the BENCH_*.json schema expects, exactly.
	for _, k := range []string{"go_version", "num_cpu", "gomaxprocs", "goos", "goarch"} {
		if _, ok := m[k]; !ok {
			t.Errorf("fragment missing key %q", k)
		}
	}
}
