package query

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/logic"
)

func uwDB(t testing.TB) *db.Database {
	t.Helper()
	s := db.NewSchema()
	s.MustAdd("student", "stud")
	s.MustAdd("professor", "prof")
	s.MustAdd("inPhase", "stud", "phase")
	s.MustAdd("publication", "title", "person")
	d := db.New(s)
	d.MustInsert("student", "juan")
	d.MustInsert("student", "john")
	d.MustInsert("professor", "sarita")
	d.MustInsert("professor", "mary")
	d.MustInsert("inPhase", "juan", "post_quals")
	d.MustInsert("inPhase", "john", "pre_quals")
	d.MustInsert("publication", "p1", "juan")
	d.MustInsert("publication", "p1", "sarita")
	d.MustInsert("publication", "p2", "john")
	d.MustInsert("publication", "p3", "mary")
	return d
}

func mustClause(t testing.TB, s string) *logic.Clause {
	t.Helper()
	c, err := logic.ParseClause(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func ex(pred string, vals ...string) logic.Literal {
	terms := make([]logic.Term, len(vals))
	for i, v := range vals {
		terms[i] = logic.Const(v)
	}
	return logic.Literal{Predicate: pred, Terms: terms}
}

func TestCoversBasic(t *testing.T) {
	e := New(uwDB(t), Options{})
	copub := mustClause(t, "advisedBy(X,Y) :- student(X), professor(Y), publication(Z,X), publication(Z,Y).")
	cases := []struct {
		example logic.Literal
		want    bool
	}{
		{ex("advisedBy", "juan", "sarita"), true},  // co-authors of p1
		{ex("advisedBy", "john", "mary"), false},   // p2 and p3 are different
		{ex("advisedBy", "juan", "mary"), false},   // no shared title
		{ex("advisedBy", "sarita", "juan"), false}, // sarita is not a student
		{ex("advisedBy", "nobody", "sarita"), false} /* unknown constant */}
	for _, tc := range cases {
		got, err := e.Covers(copub, tc.example)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Covers(%v) = %v, want %v", tc.example, got, tc.want)
		}
	}
}

func TestCoversConstantsInBody(t *testing.T) {
	e := New(uwDB(t), Options{})
	phased := mustClause(t, "advisedBy(X,Y) :- inPhase(X,post_quals), professor(Y).")
	ok, err := e.Covers(phased, ex("advisedBy", "juan", "sarita"))
	if err != nil || !ok {
		t.Fatalf("juan is post_quals: %v %v", ok, err)
	}
	ok, err = e.Covers(phased, ex("advisedBy", "john", "sarita"))
	if err != nil || ok {
		t.Fatalf("john is pre_quals: %v %v", ok, err)
	}
}

func TestCoversHeadEdgeCases(t *testing.T) {
	e := New(uwDB(t), Options{})
	c := mustClause(t, "advisedBy(X,X) :- student(X).")
	ok, err := e.Covers(c, ex("advisedBy", "juan", "sarita"))
	if err != nil || ok {
		t.Fatal("repeated head variable on distinct constants must not cover")
	}
	ok, err = e.Covers(c, ex("advisedBy", "juan", "juan"))
	if err != nil || !ok {
		t.Fatal("repeated head variable on equal constants must cover")
	}
	other := mustClause(t, "other(X) :- student(X).")
	ok, err = e.Covers(other, ex("advisedBy", "juan", "sarita"))
	if err != nil || ok {
		t.Fatal("different head predicate must not cover")
	}
	empty := mustClause(t, "advisedBy(X,Y).")
	ok, err = e.Covers(empty, ex("advisedBy", "juan", "sarita"))
	if err != nil || !ok {
		t.Fatal("empty body covers everything")
	}
}

func TestCoversErrors(t *testing.T) {
	e := New(uwDB(t), Options{})
	wrongArity := mustClause(t, "advisedBy(X,Y) :- student(X,Y).")
	if _, err := e.Covers(wrongArity, ex("advisedBy", "a", "b")); err == nil {
		t.Error("arity mismatch must error")
	}
	c := mustClause(t, "advisedBy(X,Y) :- student(X).")
	ng := logic.Literal{Predicate: "advisedBy", Terms: []logic.Term{logic.Var("X"), logic.Const("y")}}
	if _, err := e.Covers(c, ng); err == nil {
		t.Error("non-ground example must error")
	}
}

func TestCoversMissingRelation(t *testing.T) {
	e := New(uwDB(t), Options{})
	c := mustClause(t, "advisedBy(X,Y) :- nosuch(X).")
	ok, err := e.Covers(c, ex("advisedBy", "juan", "sarita"))
	if err != nil || ok {
		t.Fatal("missing relation means the clause derives nothing")
	}
}

func TestDefinitionCovers(t *testing.T) {
	e := New(uwDB(t), Options{})
	def := &logic.Definition{Target: "advisedBy"}
	def.Add(mustClause(t, "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y), professor(Y), student(X)."))
	def.Add(mustClause(t, "advisedBy(X,Y) :- inPhase(X,pre_quals), professor(Y)."))
	ok, err := e.DefinitionCovers(def, ex("advisedBy", "john", "mary"))
	if err != nil || !ok {
		t.Fatal("second clause covers john (pre_quals)")
	}
	ok, err = e.DefinitionCovers(def, ex("advisedBy", "juan", "mary"))
	if err != nil || ok {
		t.Fatal("neither clause covers juan/mary")
	}
}

func TestCount(t *testing.T) {
	e := New(uwDB(t), Options{})
	c := mustClause(t, "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y), professor(Y), student(X).")
	examples := []logic.Literal{
		ex("advisedBy", "juan", "sarita"),
		ex("advisedBy", "john", "mary"),
		ex("advisedBy", "juan", "mary"),
	}
	n, err := e.Count(c, examples)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Count = %d, want 1", n)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// A clause whose join search cannot finish within the budget must
	// return ErrBudget rather than a silent wrong answer.
	s := db.NewSchema()
	s.MustAdd("e", "a", "b")
	d := db.New(s)
	// No triangle passes through "seed": seed points into H1, H2 points
	// at seed, and every H1→H2 edge is omitted — yet seed has both out-
	// and in-edges, so no single-literal index lookup can fail fast. The
	// 3-cycle query below must therefore backtrack through ~15×14 partial
	// assignments before concluding "no", far beyond a 50-node budget.
	h1 := func(i int) string { return fmt.Sprintf("h1_%d", i) }
	h2 := func(i int) string { return fmt.Sprintf("h2_%d", i) }
	for i := 0; i < 15; i++ {
		d.MustInsert("e", "seed", h1(i))
		d.MustInsert("e", h2(i), "seed")
		for j := 0; j < 15; j++ {
			if i != j {
				d.MustInsert("e", h1(i), h1(j)) // H1 internal edges
				d.MustInsert("e", h2(i), h2(j)) // H2 internal edges
			}
			d.MustInsert("e", h2(i), h1(j)) // H2→H1 allowed; H1→H2 omitted
		}
	}
	eng := New(d, Options{MaxNodes: 50})
	c := mustClause(t, "t(X) :- e(X,A), e(A,B), e(B,X).")
	_, err := eng.Covers(c, ex("t", "seed"))
	if err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	// With a generous budget the same query completes exactly (false).
	big := New(d, Options{MaxNodes: 1000000})
	ok, err := big.Covers(c, ex("t", "seed"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("no triangle passes through seed")
	}
}

func TestBindings(t *testing.T) {
	s := db.NewSchema()
	s.MustAdd("directed", "person", "movie")
	s.MustAdd("genre", "movie", "g")
	d := db.New(s)
	d.MustInsert("directed", "ana", "m1")
	d.MustInsert("directed", "bob", "m2")
	d.MustInsert("directed", "cyn", "m3")
	d.MustInsert("genre", "m1", "drama")
	d.MustInsert("genre", "m2", "comedy")
	d.MustInsert("genre", "m3", "drama")
	e := New(d, Options{})
	c := mustClause(t, "dramaDirector(P) :- directed(P,M), genre(M,drama).")
	got, err := e.Bindings(c, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Bindings = %v, want ana and cyn", got)
	}
	seen := map[string]bool{}
	for _, g := range got {
		seen[g.Terms[0].Name] = true
	}
	if !seen["ana"] || !seen["cyn"] {
		t.Fatalf("Bindings = %v", got)
	}
	// Limit applies.
	one, err := e.Bindings(c, 1, rand.New(rand.NewSource(1)))
	if err != nil || len(one) != 1 {
		t.Fatalf("limited Bindings = %v, %v", one, err)
	}
}

func TestBindingsErrors(t *testing.T) {
	e := New(uwDB(t), Options{})
	if _, err := e.Bindings(mustClause(t, "t(X) :- nosuch(X)."), 10, nil); err == nil {
		t.Error("no anchor relation must error")
	}
	if _, err := e.Bindings(mustClause(t, "advisedBy(X,Y) :- student(X), professor(Y)."), 10, nil); err == nil {
		t.Error("non-unary head must error")
	}
}

// Property: query-execution coverage must agree with brute-force
// enumeration of all substitutions on small random databases.
func TestPropAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	consts := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 150; trial++ {
		s := db.NewSchema()
		s.MustAdd("p", "x", "y")
		s.MustAdd("q", "x")
		d := db.New(s)
		for i, n := 0, 2+rng.Intn(8); i < n; i++ {
			d.MustInsert("p", consts[rng.Intn(4)], consts[rng.Intn(4)])
		}
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			d.MustInsert("q", consts[rng.Intn(4)])
		}
		// Random clause over p/q with up to 3 literals.
		vars := []string{"X", "Y", "Z"}
		mk := func() logic.Term {
			if rng.Intn(4) == 0 {
				return logic.Const(consts[rng.Intn(4)])
			}
			return logic.Var(vars[rng.Intn(3)])
		}
		c := &logic.Clause{Head: logic.NewLiteral("t", logic.Var("X"))}
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			if rng.Intn(2) == 0 {
				c.Body = append(c.Body, logic.NewLiteral("p", mk(), mk()))
			} else {
				c.Body = append(c.Body, logic.NewLiteral("q", mk()))
			}
		}
		example := ex("t", consts[rng.Intn(4)])

		eng := New(d, Options{})
		got, err := eng.Covers(c, example)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(d, c, example, consts)
		if got != want {
			t.Fatalf("mismatch for %v on %v: engine=%v brute=%v", c, example, got, want)
		}
	}
}

// bruteForce enumerates every substitution over consts.
func bruteForce(d *db.Database, c *logic.Clause, example logic.Literal, consts []string) bool {
	vars := c.Variables()
	hasTuple := func(rel string, vals []string) bool {
		r := d.Relation(rel)
		if r == nil {
			return false
		}
		for _, t := range r.Tuples {
			if t.Equal(db.Tuple(vals)) {
				return true
			}
		}
		return false
	}
	var try func(i int, sub logic.Substitution) bool
	try = func(i int, sub logic.Substitution) bool {
		if i == len(vars) {
			if c.Head.Apply(sub).String() != example.String() {
				return false
			}
			for _, l := range c.Body {
				g := l.Apply(sub)
				vals := make([]string, len(g.Terms))
				for j, t := range g.Terms {
					vals[j] = t.Name
				}
				if !hasTuple(g.Predicate, vals) {
					return false
				}
			}
			return true
		}
		for _, v := range consts {
			sub[vars[i]] = logic.Const(v)
			if try(i+1, sub) {
				return true
			}
		}
		delete(sub, vars[i])
		return false
	}
	return try(0, logic.Substitution{})
}
