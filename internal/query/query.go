// Package query implements the paper's baseline coverage method (§5,
// "Coverage Testing As Query Execution"): a candidate clause is treated
// as a Select-Project-Join query and evaluated directly over the
// database. Given a clause C and a ground example e, the engine asks
// whether there is an assignment of C's variables to database constants
// such that the head equals e and every body literal is a tuple of its
// relation — exact Datalog semantics, no bottom-clause sampling and no
// θ-subsumption approximation.
//
// The paper discards this method for training because clauses with
// hundreds of literals make the join prohibitively expensive, and §5's
// sampled ground bottom clauses replace it. It remains the ground truth:
// this package is used to score final definitions exactly and to ablate
// subsumption-based coverage against true coverage
// (BenchmarkAblationCoverageMethod).
package query

import (
	"fmt"
	"math/rand"

	"repro/internal/db"
	"repro/internal/logic"
)

// Options bounds evaluation.
type Options struct {
	// MaxNodes is the join-search budget per coverage test; <=0 selects
	// a default of 1000000. An exhausted budget reports ErrBudget.
	MaxNodes int
}

func (o Options) normalized() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 1000000
	}
	return o
}

// ErrBudget is returned when a coverage test exhausts its node budget
// without an exact answer.
var ErrBudget = fmt.Errorf("query: join-search budget exhausted")

// Engine evaluates clauses over one database. It is safe for concurrent
// use after the database is fully loaded and indexed.
type Engine struct {
	db   *db.Database
	opts Options
}

// New creates an engine over the database.
func New(d *db.Database, opts Options) *Engine {
	return &Engine{db: d, opts: opts.normalized()}
}

// Covers reports whether clause c covers the ground example: whether
// some substitution grounds c's head to the example and its body to
// database tuples.
func (e *Engine) Covers(c *logic.Clause, example logic.Literal) (bool, error) {
	ev, err := e.compile(c, example)
	if err != nil {
		return false, err
	}
	if ev == nil {
		return false, nil
	}
	return ev.search()
}

// DefinitionCovers reports whether any clause of the definition covers
// the example.
func (e *Engine) DefinitionCovers(d *logic.Definition, example logic.Literal) (bool, error) {
	for _, c := range d.Clauses {
		ok, err := e.Covers(c, example)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Count returns how many of the examples the clause covers.
func (e *Engine) Count(c *logic.Clause, examples []logic.Literal) (int, error) {
	n := 0
	for _, ex := range examples {
		ok, err := e.Covers(c, ex)
		if err != nil {
			return 0, err
		}
		if ok {
			n++
		}
	}
	return n, nil
}

// evalLit is a compiled body literal bound to its relation.
type evalLit struct {
	rel   *db.Relation
	terms []cTerm
}

type cTerm struct {
	varID int    // -1 for constants
	val   string // constant value when varID < 0
}

// evaluator is one compiled (clause, example) join search. It mirrors
// the θ-subsumption matcher's structure — fail-first selection with
// incremental constrained degrees — but candidates come from the
// database relations rather than a ground bottom clause.
type evaluator struct {
	lits    []evalLit
	varOccs [][]int // variable id -> literal indexes (duplicates folded)

	vals      []string
	bound     []bool
	matched   []bool
	deg       []int
	remaining int
	nodes     int
	maxNodes  int
}

// compile binds the head to the example and compiles the body. A nil
// evaluator (no error) means the head cannot match or a body relation is
// missing/empty, i.e. the clause trivially does not cover.
func (e *Engine) compile(c *logic.Clause, example logic.Literal) (*evaluator, error) {
	if !example.IsGround() {
		return nil, fmt.Errorf("query: example %v must be ground", example)
	}
	if c.Head.Predicate != example.Predicate || len(c.Head.Terms) != len(example.Terms) {
		return nil, nil
	}
	varID := make(map[string]int)
	idOf := func(name string) int {
		if id, ok := varID[name]; ok {
			return id
		}
		id := len(varID)
		varID[name] = id
		return id
	}
	headVal := make(map[int]string)
	for i, t := range c.Head.Terms {
		gv := example.Terms[i].Name
		if t.IsConst() {
			if t.Name != gv {
				return nil, nil
			}
			continue
		}
		id := idOf(t.Name)
		if prev, ok := headVal[id]; ok && prev != gv {
			return nil, nil
		}
		headVal[id] = gv
	}

	ev := &evaluator{lits: make([]evalLit, len(c.Body)), maxNodes: e.opts.MaxNodes}
	for i, l := range c.Body {
		rel := e.db.Relation(l.Predicate)
		if rel == nil || rel.Len() == 0 {
			return nil, nil
		}
		if rel.Schema.Arity() != len(l.Terms) {
			return nil, fmt.Errorf("query: literal %v has arity %d, relation has %d",
				l, len(l.Terms), rel.Schema.Arity())
		}
		el := evalLit{rel: rel, terms: make([]cTerm, len(l.Terms))}
		for p, t := range l.Terms {
			if t.IsConst() {
				el.terms[p] = cTerm{varID: -1, val: t.Name}
			} else {
				el.terms[p] = cTerm{varID: idOf(t.Name)}
			}
		}
		ev.lits[i] = el
	}

	nVars := len(varID)
	ev.vals = make([]string, nVars)
	ev.bound = make([]bool, nVars)
	ev.varOccs = make([][]int, nVars)
	for li, el := range ev.lits {
		seen := -1
		for _, t := range el.terms {
			if t.varID >= 0 && t.varID != seen {
				ev.varOccs[t.varID] = append(ev.varOccs[t.varID], li)
				seen = t.varID
			}
		}
	}
	ev.matched = make([]bool, len(ev.lits))
	ev.deg = make([]int, len(ev.lits))
	for li, el := range ev.lits {
		for _, t := range el.terms {
			if t.varID < 0 {
				ev.deg[li]++
			}
		}
	}
	for id, v := range headVal {
		ev.vals[id] = v
		ev.bound[id] = true
		for _, li := range ev.varOccs[id] {
			ev.deg[li]++
		}
	}
	ev.remaining = len(ev.lits)
	return ev, nil
}

// search runs the join search; it returns ErrBudget when inconclusive.
func (ev *evaluator) search() (bool, error) {
	if ev.remaining == 0 {
		return true, nil
	}
	found, exhausted := ev.solve()
	if exhausted && !found {
		return false, ErrBudget
	}
	return found, nil
}

// pick selects the unmatched literal with the highest constrained
// degree, tie-breaking by estimated candidate count.
func (ev *evaluator) pick() int {
	best, bestDeg := -1, -1
	for i := range ev.lits {
		if ev.matched[i] {
			continue
		}
		if ev.deg[i] > bestDeg {
			best, bestDeg = i, ev.deg[i]
		}
	}
	if bestDeg <= 0 || best < 0 {
		return best
	}
	bestEst := ev.estimate(best)
	if bestEst <= 1 {
		return best
	}
	checked := 0
	for i := range ev.lits {
		if ev.matched[i] || i == best || ev.deg[i] != bestDeg {
			continue
		}
		if est := ev.estimate(i); est < bestEst {
			best, bestEst = i, est
			if est <= 1 {
				break
			}
		}
		checked++
		if checked >= 3 {
			break
		}
	}
	return best
}

// estimate returns the smallest index-list size usable for literal li.
func (ev *evaluator) estimate(li int) int {
	el := &ev.lits[li]
	best := el.rel.Len()
	for p, t := range el.terms {
		var want string
		if t.varID < 0 {
			want = t.val
		} else if ev.bound[t.varID] {
			want = ev.vals[t.varID]
		} else {
			continue
		}
		if n := el.rel.Frequency(p, want); n < best {
			best = n
			if best == 0 {
				return 0
			}
		}
	}
	return best
}

// candidates returns the tuples of li's relation compatible with the
// current bindings, via the most selective bound attribute.
func (ev *evaluator) candidates(li int) []db.Tuple {
	el := &ev.lits[li]
	bestAttr, bestVal, bestN := -1, "", el.rel.Len()+1
	for p, t := range el.terms {
		var want string
		if t.varID < 0 {
			want = t.val
		} else if ev.bound[t.varID] {
			want = ev.vals[t.varID]
		} else {
			continue
		}
		if n := el.rel.Frequency(p, want); n < bestN {
			bestAttr, bestVal, bestN = p, want, n
			if n == 0 {
				return nil
			}
		}
	}
	check := func(t db.Tuple) bool {
		for p, ct := range el.terms {
			if ct.varID < 0 {
				if ct.val != t[p] {
					return false
				}
				continue
			}
			if ev.bound[ct.varID] && ev.vals[ct.varID] != t[p] {
				return false
			}
		}
		return true
	}
	var out []db.Tuple
	if bestAttr >= 0 {
		for _, t := range el.rel.Lookup(bestAttr, bestVal) {
			if check(t) {
				out = append(out, t)
			}
		}
		return out
	}
	for _, t := range el.rel.Tuples {
		if check(t) {
			out = append(out, t)
		}
	}
	return out
}

func (ev *evaluator) bindVar(v int, val string) {
	ev.vals[v] = val
	ev.bound[v] = true
	for _, li := range ev.varOccs[v] {
		ev.deg[li]++
	}
}

func (ev *evaluator) unbindVar(v int) {
	ev.bound[v] = false
	for _, li := range ev.varOccs[v] {
		ev.deg[li]--
	}
}

func (ev *evaluator) solve() (bool, bool) {
	if ev.remaining == 0 {
		return true, false
	}
	if ev.nodes >= ev.maxNodes {
		return false, true
	}
	li := ev.pick()
	cands := ev.candidates(li)
	if len(cands) == 0 {
		return false, false
	}
	el := &ev.lits[li]
	ev.matched[li] = true
	ev.remaining--
	defer func() {
		ev.matched[li] = false
		ev.remaining++
	}()

	var boundBuf [8]int
	exhausted := false
	for _, t := range cands {
		ev.nodes++
		if ev.nodes >= ev.maxNodes {
			return false, true
		}
		bound := boundBuf[:0]
		ok := true
		for p, ct := range el.terms {
			if ct.varID < 0 {
				continue
			}
			if ev.bound[ct.varID] {
				if ev.vals[ct.varID] != t[p] {
					ok = false
					break
				}
				continue
			}
			ev.bindVar(ct.varID, t[p])
			bound = append(bound, ct.varID)
		}
		if ok {
			matched, ex := ev.solve()
			if matched {
				return true, false
			}
			if ex {
				exhausted = true
			}
		}
		for _, v := range bound {
			ev.unbindVar(v)
		}
		if exhausted {
			return false, true
		}
	}
	return false, exhausted
}

// Bindings enumerates up to limit distinct head bindings (as examples)
// that the clause derives over the database — the query-execution view
// of a clause as an SPJ query with projection onto the head. It is used
// by tools to materialize what a learned rule predicts. A limit <= 0
// means 1000. The rng, when non-nil, randomizes exploration order so
// samples of large result sets are not biased to relation order.
func (e *Engine) Bindings(c *logic.Clause, limit int, rng *rand.Rand) ([]logic.Literal, error) {
	if limit <= 0 {
		limit = 1000
	}
	// Enumerate by scanning candidate constants for the first head
	// variable from its most selective body occurrence; simpler and
	// exact: run Covers over the distinct values of an anchor attribute.
	var out []logic.Literal
	anchor, attr := e.anchorRelation(c)
	if anchor == nil {
		return nil, fmt.Errorf("query: no body literal shares the head's first variable")
	}
	values := anchor.DistinctValues(attr)
	if rng != nil {
		rng.Shuffle(len(values), func(i, j int) { values[i], values[j] = values[j], values[i] })
	}
	if len(c.Head.Terms) != 1 {
		return nil, fmt.Errorf("query: Bindings supports unary heads; got arity %d", len(c.Head.Terms))
	}
	for _, v := range values {
		ex := logic.Literal{Predicate: c.Head.Predicate, Terms: []logic.Term{logic.Const(v)}}
		ok, err := e.Covers(c, ex)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, ex)
			if len(out) >= limit {
				break
			}
		}
	}
	return out, nil
}

// anchorRelation finds a body literal whose term equals the head's first
// variable, returning its relation and attribute position.
func (e *Engine) anchorRelation(c *logic.Clause) (*db.Relation, int) {
	if len(c.Head.Terms) == 0 || !c.Head.Terms[0].IsVar() {
		return nil, 0
	}
	headVar := c.Head.Terms[0].Name
	for _, l := range c.Body {
		for p, t := range l.Terms {
			if t.IsVar() && t.Name == headVar {
				if rel := e.db.Relation(l.Predicate); rel != nil && rel.Len() > 0 {
					return rel, p
				}
			}
		}
	}
	return nil, 0
}
