package autobias

import (
	"strings"
	"testing"
	"time"
)

func uwTask(t testing.TB, scale float64) Task {
	t.Helper()
	ds, err := GenerateDataset("uw", scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	return TaskFromDataset(ds)
}

func TestParseExample(t *testing.T) {
	e, err := ParseExample("advisedBy(juan,sarita)")
	if err != nil {
		t.Fatal(err)
	}
	if e.Predicate != "advisedBy" || len(e.Terms) != 2 {
		t.Fatalf("example = %v", e)
	}
	if _, err := ParseExample("advisedBy(X,sarita)"); err == nil {
		t.Error("non-ground example must fail")
	}
	if _, err := ParseExample("a(b) :- c(d)"); err == nil {
		t.Error("clause with body must fail")
	}
}

func TestBuildBiasMethods(t *testing.T) {
	task := uwTask(t, 0.2)
	for _, m := range Methods() {
		b, _, err := BuildBias(task, Options{Method: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if b.Size() == 0 {
			t.Fatalf("%s: empty bias", m)
		}
		if _, err := b.Compile(task.DB.Schema(), task.Target, len(task.TargetAttrs)); err != nil {
			t.Fatalf("%s: compile: %v", m, err)
		}
	}
	// Manual without Task.Manual must fail.
	task2 := task
	task2.Manual = nil
	if _, _, err := BuildBias(task2, Options{Method: MethodManual}); err == nil {
		t.Error("manual without bias must fail")
	}
	if _, _, err := BuildBias(task, Options{Method: "bogus"}); err == nil {
		t.Error("unknown method must fail")
	}
}

func TestAutoBiasLargerThanManual(t *testing.T) {
	// §6.2: AutoBias generates roughly 30% more definitions than the
	// expert. Check the induced bias is at least as large as manual.
	task := uwTask(t, 0.3)
	auto, _, err := BuildBias(task, Options{Method: MethodAutoBias})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Size() <= task.Manual.Size() {
		t.Errorf("induced bias (%d defs) should exceed manual (%d defs)", auto.Size(), task.Manual.Size())
	}
}

func TestLearnEndToEnd(t *testing.T) {
	task := uwTask(t, 0.25)
	res, err := Learn(task, Options{Method: MethodAutoBias, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Definition.Len() == 0 {
		t.Fatal("no clauses learned")
	}
	if res.Bias == nil || res.Graph == nil {
		t.Fatal("autobias run must report bias and type graph")
	}
	m, err := res.Evaluate(task.Pos, task.Neg)
	if err != nil {
		t.Fatal(err)
	}
	if m.F1 < 0.5 {
		t.Errorf("training F1 = %.2f; expected a useful definition:\n%s", m.F1, res.Definition)
	}
}

func TestLearnManualEndToEnd(t *testing.T) {
	task := uwTask(t, 0.25)
	res, err := Learn(task, Options{Method: MethodManual, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Definition.Len() == 0 {
		t.Fatal("no clauses learned with manual bias")
	}
	m, err := res.Evaluate(task.Pos, task.Neg)
	if err != nil {
		t.Fatal(err)
	}
	if m.F1 < 0.5 {
		t.Errorf("training F1 = %.2f:\n%s", m.F1, res.Definition)
	}
}

func TestLearnAlephEndToEnd(t *testing.T) {
	task := uwTask(t, 0.25)
	res, err := Learn(task, Options{Method: MethodAleph, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Aleph may learn less accurate definitions but must terminate and
	// produce a scorable result.
	if _, err := res.Evaluate(task.Pos, task.Neg); err != nil {
		t.Fatal(err)
	}
}

func TestLearnTimeoutSurfaces(t *testing.T) {
	task := uwTask(t, 0.25)
	res, err := Learn(task, Options{Method: MethodManual, Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("timeout must surface")
	}
}

func TestCrossValidateUW(t *testing.T) {
	if testing.Short() {
		t.Skip("cross validation is slow")
	}
	task := uwTask(t, 0.25)
	cv, err := CrossValidate(task, Options{Method: MethodAutoBias, Seed: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Folds) != 3 {
		t.Fatalf("folds = %d", len(cv.Folds))
	}
	if cv.F1 <= 0.3 {
		t.Errorf("cross-validated F1 = %.2f; expected generalization", cv.F1)
	}
}

func TestEvaluateExactAgreesOnCleanConcept(t *testing.T) {
	ds, err := GenerateDataset("imdb", 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	task := TaskFromDataset(ds)
	res, err := Learn(task, Options{Method: MethodManual, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := res.EvaluateExact(task.Pos, task.Neg)
	if err != nil {
		t.Fatal(err)
	}
	// IMDb's concept is noise-free and short; the exact evaluator must
	// score the learned definition perfectly.
	if exact.F1 < 0.99 {
		t.Fatalf("exact F1 = %.2f for:\n%s", exact.F1, res.Definition)
	}
	// The subsumption-based estimate must be close to the exact one.
	approx, err := res.Evaluate(task.Pos, task.Neg)
	if err != nil {
		t.Fatal(err)
	}
	if approx.F1 < exact.F1-0.2 {
		t.Errorf("subsumption F1 %.2f far below exact %.2f", approx.F1, exact.F1)
	}
}

func TestExecuteClause(t *testing.T) {
	ds, err := GenerateDataset("imdb", 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	clause, err := ParseClause("dramaDirector(P) :- directed(P,M), genre(M,g_drama).")
	if err != nil {
		t.Fatal(err)
	}
	facts, err := ExecuteClause(ds.DB, clause, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) == 0 {
		t.Fatal("the true IMDb rule must derive facts")
	}
	for _, f := range facts {
		if f.Predicate != "dramaDirector" {
			t.Fatalf("derived fact %v has wrong predicate", f)
		}
	}
}

func TestDiscoverINDsAndRenderGraph(t *testing.T) {
	task := uwTask(t, 0.2)
	inds := DiscoverINDs(task.DB, 0.5)
	if len(inds) == 0 {
		t.Fatal("no INDs discovered on UW")
	}
	_, graph, _, err := InduceBias(task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTypeGraph(graph, task)
	if !strings.Contains(out, "publication[person]") {
		t.Errorf("rendered graph missing attributes:\n%s", out)
	}
}
