package autobias_test

import (
	"context"
	"testing"

	autobias "repro"
	"repro/internal/schematx"
	"repro/internal/testkit"
)

// TestSchemaVariantDifferential is the cross-variant differential suite
// (DESIGN.md §14): for UW, HIV and IMDb, every catalog transform
// (vertical partition, FD denormalization, join decomposition) is
// round-trip-proved, learned on, and required to
//
//   - be internally deterministic: theories bit-identical at workers
//     1/4/8 and across the sharded transport, and
//   - agree exactly with the base schema's theory on every held-out
//     example — schema independence as a testable property.
//
// Held-out examples are generated once from the base dataset (the tail
// of the Pos/Neg streams, disjoint from the training split); the target
// relation is never transformed, so the same examples are valid in
// every variant.
func TestSchemaVariantDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-variant suite learns ~16 theories per dataset; skipped in -short")
	}
	cases := []struct {
		name string
		// maxLiterals caps bottom-clause size. The indirection literals a
		// transform introduces land at the deepest frontier level, so the
		// cap must clear the variant schema's depth-3 frontier: 1500 (the
		// default) truncates exactly the fragment-deref literals on the
		// 46-relation IMDb schema.
		maxLiterals int
		// beamWidth widens the search where decomposed schemas need
		// longer literal chains (two literals where the base needs one),
		// whose intermediate generalizations score low and fall off a
		// narrow beam.
		beamWidth int
	}{
		{name: "uw", maxLiterals: 6000, beamWidth: 8},
		{name: "hiv", maxLiterals: 6000, beamWidth: 8},
		{name: "imdb", maxLiterals: 3000, beamWidth: 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ds, err := autobias.GenerateDataset(tc.name, 0.1, 1)
			if err != nil {
				t.Fatal(err)
			}
			task, heldOut := splitHeldOut(t, ds, 8, 40, 24)
			transforms, err := schematx.CatalogFor(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			opts := autobias.Options{
				Method: autobias.MethodManual,
				// Depth 3: every catalog transform adds at most one
				// indirection hop (fragment deref, dictionary resolve) to
				// the depth-2 base concepts, so 3 gives each variant the
				// same semantic reach.
				Depth:         3,
				MaxLiterals:   tc.maxLiterals,
				BeamWidth:     tc.beamWidth,
				Seed:          1,
				PureGroundBCs: true,
			}
			rep, err := testkit.CrossVariantDifferential(context.Background(), task, opts, testkit.VariantConfig{
				Transforms:  transforms,
				Workers:     []int{1, 4, 8},
				ShardLayout: [][]string{{"s0"}, {"s1"}},
				HeldOut:     heldOut,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := len(rep.Legs), len(transforms)+1; got != want {
				t.Fatalf("report has %d legs, want %d", got, want)
			}
			for _, d := range rep.Diffs {
				t.Error(d)
			}
			// The suite must not pass vacuously: the base theory has to
			// learn something and the held-out set must exercise both
			// verdicts.
			base := rep.Legs[0]
			if base.Leg.Clauses == 0 {
				t.Error("base leg learned no clauses; the equivalence check is vacuous")
			}
			covered := 0
			for _, v := range base.Verdicts {
				if v {
					covered++
				}
			}
			if covered == 0 || covered == len(base.Verdicts) {
				t.Errorf("base theory covers %d/%d held-out examples; need both verdicts represented", covered, len(base.Verdicts))
			}
		})
	}
}

// splitHeldOut carves a training task (trainPos positives, trainNeg
// negatives) and a disjoint held-out set (half positives, half
// negatives from the remaining tails) out of a generated dataset.
func splitHeldOut(t *testing.T, ds *autobias.Dataset, trainPos, trainNeg, heldOut int) (autobias.Task, []autobias.Example) {
	t.Helper()
	task := autobias.TaskFromDataset(ds)
	half := heldOut / 2
	if len(task.Pos) < trainPos+half || len(task.Neg) < trainNeg+half {
		t.Fatalf("dataset too small to split: %d pos, %d neg (need %d+%d, %d+%d)",
			len(task.Pos), len(task.Neg), trainPos, half, trainNeg, half)
	}
	var out []autobias.Example
	out = append(out, task.Pos[trainPos:trainPos+half]...)
	out = append(out, task.Neg[trainNeg:trainNeg+half]...)
	task.Pos = task.Pos[:trainPos]
	task.Neg = task.Neg[:trainNeg]
	return task, out
}
