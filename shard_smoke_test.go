// Multi-process smoke test for distributed coverage: builds the real
// cmd/shardworker binary, boots three worker processes, runs a
// coordinated learning job against them, kills one worker with SIGKILL
// mid-run, and requires the learned theory to be bit-identical to a
// single-process pure-mode reference. This is the only test that
// crosses a real process boundary; the in-process chaos suite
// (shard_differential_test.go) covers the fault-injection matrix.
package autobias_test

import (
	"bufio"
	"context"
	"os/exec"
	"path/filepath"
	"regexp"
	"syscall"
	"testing"
	"time"

	autobias "repro"
)

var listenRE = regexp.MustCompile(`listening on (http://\S+)`)

// startWorkerProc launches one shardworker process on an ephemeral port
// and returns it with its parsed base URL.
func startWorkerProc(t *testing.T, bin, id string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-dataset", "uw", "-scale", "0.1", "-seed", "1",
		"-id", id, "-addr", "127.0.0.1:0", "-workers", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		cmd.Wait()
	})
	// The worker prints its listen line only after the engine (dataset,
	// bias, caches) is fully built, so seeing it means ready.
	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				lineCh <- m[1]
				return
			}
		}
		close(lineCh)
	}()
	select {
	case url, ok := <-lineCh:
		if !ok {
			t.Fatalf("worker %s exited before announcing its listen address", id)
		}
		return cmd, url
	case <-time.After(3 * time.Minute):
		t.Fatalf("worker %s did not announce a listen address in time", id)
	}
	return nil, ""
}

func TestShardWorkerProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test skipped with -short")
	}

	bin := filepath.Join(t.TempDir(), "shardworker")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/shardworker").CombinedOutput(); err != nil {
		t.Fatalf("building shardworker: %v\n%s", err, out)
	}

	// The full (untruncated) task: worker processes rebuild the task from
	// the same -dataset flags, and the config fingerprint covers the bias
	// induced from it, so coordinator and workers must agree on it exactly.
	ds, err := autobias.GenerateDataset("uw", 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	task := autobias.TaskFromDataset(ds)
	opts := autobias.Options{Method: autobias.MethodAutoBias, Seed: 1, Workers: 4, Metrics: true}
	ctx := context.Background()

	refOpts := opts
	refOpts.PureGroundBCs = true
	refStart := time.Now()
	ref, err := autobias.LearnCtx(ctx, task, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	refElapsed := time.Since(refStart)
	if ref.Definition == nil || len(ref.Definition.Clauses) == 0 {
		t.Fatal("reference learned no clauses; the comparison is vacuous")
	}

	var urls []string
	var procs []*exec.Cmd
	for _, id := range []string{"p0", "p1", "p2"} {
		cmd, url := startWorkerProc(t, bin, id)
		procs = append(procs, cmd)
		urls = append(urls, url)
	}

	// SIGKILL the middle worker partway through the run — no drain, no
	// goodbye, exactly the failure the coordinator must absorb.
	killAt := refElapsed / 3
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(killAt)
		procs[1].Process.Signal(syscall.SIGKILL)
	}()

	distOpts := opts
	distOpts.Shard = &autobias.ShardOptions{Workers: urls, Retries: 2}
	res, err := autobias.LearnCtx(ctx, task, distOpts)
	<-killed
	if err != nil {
		t.Fatalf("distributed run failed: %v", err)
	}

	if got, want := res.Definition.String(), ref.Definition.String(); got != want {
		t.Errorf("distributed theory diverges from single-process reference:\n--- reference\n%s\n--- distributed\n%s", want, got)
	}
	if res.Degraded() {
		t.Errorf("recovering from a killed worker must not degrade the run: %s", res.Report.Summary())
	}
	retried := res.Report.Count(autobias.DegradationShardRetried)
	fell := res.Report.Count(autobias.DegradationShardFellBackLocal)
	t.Logf("killed worker p1 after %s: %d retry/failover events, %d local fallbacks, report: %s",
		killAt, retried, fell, res.Report.Summary())
	if retried+fell == 0 {
		// The kill can land after the run's last RPC on a fast box; the
		// theory check above is the contract, recovery events are advisory.
		t.Log("no recovery events recorded — kill likely landed after the final coverage RPC")
	}
}
