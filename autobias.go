// Package autobias is a from-scratch Go implementation of AutoBias
// (Picado et al., "Scalable and Usable Relational Learning With Automatic
// Language Bias", SIGMOD 2021): a relational (inductive logic
// programming) learner over an in-memory relational database, with
// automatic induction of language bias from exact and approximate
// inclusion dependencies, three bottom-clause sampling strategies, and
// θ-subsumption coverage testing.
//
// The package is a facade over the implementation packages under
// internal/; see DESIGN.md for the full system inventory. Typical use:
//
//	task := autobias.Task{DB: db, Target: "advisedBy",
//		TargetAttrs: []string{"stud", "prof"}, Pos: pos, Neg: neg}
//	res, err := autobias.Learn(task, autobias.Options{Method: autobias.MethodAutoBias})
//	fmt.Println(res.Definition)
package autobias

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/bias"
	"repro/internal/bottom"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/foil"
	"repro/internal/ind"
	"repro/internal/learn"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/report"
	"repro/internal/shard"
	"repro/internal/subsume"
)

// Re-exported core types, so callers need only this package.
type (
	// Database is the in-memory relational engine.
	Database = db.Database
	// Schema describes a database's relations.
	Schema = db.Schema
	// Tuple is one database row.
	Tuple = db.Tuple
	// Example is a ground literal of the target relation.
	Example = logic.Literal
	// Clause is a Horn clause.
	Clause = logic.Clause
	// Definition is a learned set of clauses.
	Definition = logic.Definition
	// Bias is a language bias (predicate + mode definitions).
	Bias = bias.Bias
	// IND is a unary inclusion dependency.
	IND = ind.IND
	// TypeGraph is the Algorithm 3 graph behind an induced bias.
	TypeGraph = bias.TypeGraph
	// Dataset is a generated benchmark dataset.
	Dataset = datagen.Dataset
	// Metrics are precision/recall/F-measure.
	Metrics = eval.Metrics
	// CVResult aggregates cross-validation outcomes.
	CVResult = eval.CVResult
	// Report records a run's degradation events (deadline hits, recovered
	// worker panics, abandoned coverage work, exhausted subsumption
	// budgets); see Result.Report.
	Report = report.Report
	// DegradationEvent is one recorded degradation.
	DegradationEvent = report.Event
	// DegradationKind classifies degradation events.
	DegradationKind = report.Kind
	// MetricsCollector accumulates run instrumentation (atomic counters,
	// histograms, stage spans); see Options.Metrics/Options.Collector and
	// DESIGN.md §9.
	MetricsCollector = metrics.Collector
	// MetricsSnapshot is a point-in-time copy of a collector, exposed on
	// Result.Metrics and written by the CLIs' -metrics flags.
	MetricsSnapshot = metrics.Snapshot
	// ModelArtifact is the versioned on-disk form of a learned model; see
	// Result.BuildArtifact, internal/model, and the serving stack
	// (internal/serve, cmd/serve).
	ModelArtifact = model.Artifact
	// ModelDataRef names the database a model was trained over, so a
	// serving process can rebind it.
	ModelDataRef = model.DataRef
	// ShardWorker is one shard-worker service — a coverage engine behind
	// HTTP, answering a distributed run's coverage RPCs; see
	// NewShardWorker, Options.Shard, and cmd/shardworker.
	ShardWorker = shard.Worker
	// ShardWorkerOptions tunes a shard worker's HTTP substrate (request
	// cap, batch cap, timeouts); the zero value selects defaults.
	ShardWorkerOptions = shard.WorkerOptions
)

// LoadModel reads and verifies a model artifact (version, checksum,
// embedded theory/bias).
func LoadModel(path string) (*ModelArtifact, error) { return model.Load(path) }

// NewMetricsCollector returns an enabled, empty instrumentation
// collector, for callers that want to aggregate several runs (pass it as
// Options.Collector) or serve live snapshots while a run is in flight.
func NewMetricsCollector() *MetricsCollector { return metrics.New() }

// Degradation-event kinds, re-exported from internal/report.
const (
	// DegradationDeadlineHit: the run's deadline interrupted learning; the
	// returned theory is partial.
	DegradationDeadlineHit = report.DeadlineHit
	// DegradationPanicRecovered: a coverage worker panicked; the example
	// was isolated as "not covered" and learning continued.
	DegradationPanicRecovered = report.PanicRecovered
	// DegradationCoverageAbandoned: a coverage count stopped early on
	// cancellation.
	DegradationCoverageAbandoned = report.CoverageAbandoned
	// DegradationBottomAbandoned: a bottom-clause construction was
	// interrupted.
	DegradationBottomAbandoned = report.BottomAbandoned
	// DegradationSubsumeBudget: a subsumption test exhausted its node
	// budget and reported "not covered" (the §5 sound approximation; not
	// counted by Report.Degraded).
	DegradationSubsumeBudget = report.SubsumeBudget
	// DegradationShardRetried: a shard coverage RPC failed and was retried
	// (or failed over to a surviving shard). Results stay exact — the
	// retry resolved the same pure verdicts — so this does not count as
	// Degraded.
	DegradationShardRetried = report.ShardRetried
	// DegradationShardFellBackLocal: every worker for a shard was
	// unreachable and its examples were computed in-process. Results stay
	// exact; the run merely lost its distribution.
	DegradationShardFellBackLocal = report.ShardFellBackLocal
	// DegradationShardLost: a shard's examples could not be resolved
	// anywhere (local fallback disabled); the run degraded to its anytime
	// partial theory.
	DegradationShardLost = report.ShardLost
)

// NewSchema creates an empty schema.
func NewSchema() *Schema { return db.NewSchema() }

// NewDatabase creates a database over a schema.
func NewDatabase(s *Schema) *Database { return db.New(s) }

// LoadCSVDir loads a database from a directory of <relation>.csv files.
func LoadCSVDir(dir string) (*Database, error) { return db.LoadCSVDir(dir) }

// ParseExample parses a ground target literal like "advisedBy(juan,sarita)".
func ParseExample(s string) (Example, error) {
	c, err := logic.ParseClause(s)
	if err != nil {
		return Example{}, err
	}
	if len(c.Body) != 0 || !c.Head.IsGround() {
		return Example{}, fmt.Errorf("autobias: %q is not a ground fact", s)
	}
	return c.Head, nil
}

// ParseBias parses a language bias from its text form.
func ParseBias(text string) (*Bias, error) { return bias.Parse(text) }

// ParseClause parses a Horn clause in Datalog syntax, e.g.
// "advisedBy(X,Y) :- publication(Z,X), publication(Z,Y).".
func ParseClause(s string) (*Clause, error) { return logic.ParseClause(s) }

// GenerateDataset builds one of the paper's five evaluation datasets:
// "uw", "hiv", "imdb", "flt" or "sys". Scale 0 selects the default size,
// seed 0 a fixed seed.
func GenerateDataset(name string, scale float64, seed int64) (*Dataset, error) {
	return datagen.Generate(name, datagen.Config{Scale: scale, Seed: seed})
}

// DatasetNames lists the generated datasets in Table 5 order.
func DatasetNames() []string { return datagen.Names() }

// Method selects how the language bias is obtained and which learner
// runs — the five columns of the paper's Table 5.
type Method string

const (
	// MethodCastor is the baseline: one shared type, every attribute may
	// be a variable or a constant.
	MethodCastor Method = "castor"
	// MethodNoConst is the baseline without constants.
	MethodNoConst Method = "noconst"
	// MethodManual uses the expert-written bias with the bottom-up
	// learner.
	MethodManual Method = "manual"
	// MethodAleph uses the expert-written bias with the top-down FOIL
	// learner (Aleph emulating FOIL, §6.1).
	MethodAleph Method = "aleph"
	// MethodAutoBias induces the bias automatically (§3) and runs the
	// bottom-up learner.
	MethodAutoBias Method = "autobias"
)

// Methods lists the Table 5 methods in column order.
func Methods() []Method {
	return []Method{MethodCastor, MethodNoConst, MethodManual, MethodAleph, MethodAutoBias}
}

// Sampling selects the bottom-clause sampling strategy (Table 6).
type Sampling = bottom.Strategy

const (
	// SamplingNaive samples relations uniformly and independently (§4.1).
	SamplingNaive = bottom.Naive
	// SamplingRandom samples over semi-joins (§4.2).
	SamplingRandom = bottom.Random
	// SamplingStratified samples every stratum (§4.3).
	SamplingStratified = bottom.Stratified
)

// Task is a learning problem: a database, a target relation, examples,
// and optionally an expert bias (required by MethodManual/MethodAleph).
type Task struct {
	DB          *Database
	Target      string
	TargetAttrs []string
	Pos, Neg    []Example
	Manual      *Bias
}

// TaskFromDataset adapts a generated dataset.
func TaskFromDataset(ds *Dataset) Task {
	return Task{DB: ds.DB, Target: ds.Target, TargetAttrs: ds.TargetAttrs,
		Pos: ds.Pos, Neg: ds.Neg, Manual: ds.Manual}
}

// Options configures a learning run. The zero value reproduces the
// paper's defaults: naïve sampling, 20 tuples per mode, depth 2,
// constant-threshold 18% relative, approximate-IND error 50%.
type Options struct {
	// Method selects bias source and learner; empty means MethodAutoBias.
	Method Method
	// Sampling selects the BC sampling strategy (default naïve, §6.1).
	Sampling Sampling
	// Depth is the BC construction iteration count d (default 2).
	Depth int
	// SampleSize is s, tuples per mode/stratum (default 20).
	SampleSize int
	// MaxLiterals caps BC body size (default 1500).
	MaxLiterals int
	// ConstantThreshold is the §3.2 hyper-parameter as a relative ratio
	// (default 0.18).
	ConstantThreshold float64
	// ApproxINDError is the approximate-IND error cutoff (default 0.5).
	ApproxINDError float64
	// INDs, when non-nil, skips IND discovery (e.g. reuse across folds).
	INDs []IND
	// BeamWidth for the bottom-up learner's generalization (default 3).
	BeamWidth int
	// EvalSampleCap bounds per-candidate scoring work (default 200).
	EvalSampleCap int
	// MinPrecision is the minimum-criterion precision (default 0.7).
	MinPrecision float64
	// SubsumeMaxNodes bounds each θ-subsumption test (default 100000).
	SubsumeMaxNodes int
	// Timeout bounds one learning run; 0 means unlimited. Timed-out runs
	// return partial definitions with Result.TimedOut set (the paper's
	// ">10h" rows).
	Timeout time.Duration
	// Seed fixes all randomness (default 1).
	Seed int64
	// Workers bounds parallelism: coverage testing (the per-example
	// θ-subsumption checks that dominate learning, §5) fans out over a
	// worker pool of this size, and CrossValidate trains up to this many
	// folds concurrently. <=0 defaults to runtime.GOMAXPROCS(0); 1
	// reproduces the sequential engine exactly. Results are identical at
	// every worker count (see DESIGN.md, "Concurrency architecture").
	Workers int
	// Metrics enables run instrumentation: counters, histograms and stage
	// spans collected through the hot paths and snapshotted on
	// Result.Metrics. Off by default; disabled collection costs nothing
	// (see DESIGN.md §9).
	Metrics bool
	// Collector, when non-nil, receives the run's instrumentation instead
	// of a fresh per-run collector (implies Metrics). Use one collector
	// across runs to aggregate, or poll Snapshot() live from another
	// goroutine — all collector methods are concurrency-safe.
	Collector *MetricsCollector
	// PureGroundBCs forces derived-seed ("pure") ground-BC provenance:
	// each example's BC becomes a pure function of (options, example)
	// instead of a product of the builder's shared RNG stream. Distributed
	// runs require it (Options.Shard implies it); set it on a
	// single-process run to produce the reference a distributed run must
	// match bit for bit. Pure and shared provenance sample different,
	// equally valid BCs, so theories differ between the two modes — but
	// are deterministic within each.
	PureGroundBCs bool
	// Shard, when non-nil, distributes coverage testing — the learner's
	// hot loop — across shard-worker processes; see ShardOptions,
	// NewShardWorker and DESIGN.md §13. Not supported with MethodAleph.
	Shard *ShardOptions
}

// ShardOptions configures a distributed coverage run: the worker fleet
// plus the knobs of the failover ladder (timeouts, retries, hedging,
// local fallback). The zero value of every field selects a sane
// default; only Workers is required.
type ShardOptions struct {
	// Workers lists the fleet, one entry per shard; replicas of the same
	// shard are separated by '|', e.g.
	// {"http://a:7001|http://b:7001", "http://a:7002"}. Every worker must
	// be started (cmd/shardworker or NewShardWorker) from the same task
	// and options as this run — a config fingerprint on every RPC
	// enforces it.
	Workers []string
	// RequestTimeout bounds one RPC attempt; <=0 selects 10s.
	RequestTimeout time.Duration
	// Retries is the attempt budget per shard; <=0 selects 3.
	Retries int
	// HedgeDelay, when >0, duplicates a straggling request to a second
	// replica after this long; first answer wins. 0 disables hedging.
	HedgeDelay time.Duration
	// DisableLocalFallback aborts (anytime, partial theory) instead of
	// computing a lost shard's examples in-process.
	DisableLocalFallback bool
	// DisableBatch forces per-candidate RPCs instead of shipping each
	// refinement step's whole candidate frontier per shard in one wire-v2
	// round. Verdicts and theories are identical either way (the
	// differential suite proves it); the per-candidate mode exists for
	// diagnosis and old-fleet comparison.
	DisableBatch bool
	// BatchClauses caps frontier clauses per wire batch; <=0 selects 256.
	BatchClauses int
}

// shardFleet parses the "url1|url2" replica syntax into per-shard
// replica lists.
func (so *ShardOptions) shardFleet() [][]string {
	fleet := make([][]string, 0, len(so.Workers))
	for _, entry := range so.Workers {
		var reps []string
		for _, u := range strings.Split(entry, "|") {
			if u = strings.TrimSpace(u); u != "" {
				reps = append(reps, strings.TrimSuffix(u, "/"))
			}
		}
		fleet = append(fleet, reps)
	}
	return fleet
}

// collector resolves the run's metrics collector: Collector wins, then
// Metrics allocates a fresh one, else nil (collection disabled).
func (o Options) collector() *metrics.Collector {
	if o.Collector != nil {
		return o.Collector
	}
	if o.Metrics {
		return metrics.New()
	}
	return nil
}

func (o Options) method() Method {
	if o.Method == "" {
		return MethodAutoBias
	}
	return o.Method
}

func (o Options) bottomOptions() bottom.Options {
	return bottom.Options{
		Strategy:    o.Sampling,
		Depth:       o.Depth,
		SampleSize:  o.SampleSize,
		MaxLiterals: o.MaxLiterals,
		Seed:        o.Seed,
	}
}

func (o Options) subsumeOptions() subsume.Options {
	return subsume.Options{MaxNodes: o.SubsumeMaxNodes, Seed: o.Seed}
}

// Result is the outcome of one learning run.
type Result struct {
	// Definition is the learned Horn definition (possibly empty).
	Definition *Definition
	// Bias is the language bias that was used (induced for
	// MethodAutoBias).
	Bias *Bias
	// Graph is the type graph behind an induced bias (MethodAutoBias
	// only).
	Graph *TypeGraph
	// INDs are the inclusion dependencies the induced bias was built from
	// (MethodAutoBias only; nil otherwise). Kept so incremental theory
	// repair (RepairCtx) can refresh them after a data batch instead of
	// rediscovering from scratch.
	INDs []IND
	// Elapsed is the learning wall-clock (excluding bias induction,
	// reported separately as BiasTime to mirror §6.1's preprocessing
	// accounting).
	Elapsed time.Duration
	// BiasTime is the bias construction time (IND discovery + Algorithm 3
	// for MethodAutoBias; ~0 otherwise).
	BiasTime time.Duration
	// TimedOut reports that the run hit its deadline (Options.Timeout or
	// the caller's ctx); Cancelled that it was interrupted some other way
	// (e.g. SIGINT through LearnCtx). In both cases Definition holds the
	// clauses learned before the interruption — anytime semantics.
	TimedOut  bool
	Cancelled bool
	// Report records the run's degradation events; never nil after Learn.
	Report *Report
	// Clauses is the number of learned clauses.
	Clauses int
	// Metrics is the run's instrumentation snapshot (nil unless
	// Options.Metrics or Options.Collector was set). Result.Evaluate
	// refreshes it, so post-run scoring shows up too. Deterministic
	// counters are bit-identical at every worker count; gauges are not —
	// see the metrics package's determinism contract.
	Metrics *MetricsSnapshot

	covers  eval.CoverFunc
	db      *Database
	metrics *metrics.Collector
	// engine is the run's coverage engine, kept for model capture: its
	// builder holds the build log and effective options an artifact must
	// record for exact serve-time replay.
	engine *learn.CoverageEngine
}

// Degraded reports whether the run was interrupted or lost work it could
// not recover exactly (deadline hit, recovered panic, abandoned
// coverage). Exhausted subsumption budgets alone do not count — they are
// the paper's by-design approximation.
func (r *Result) Degraded() bool { return r.Report.Degraded() }

// BuildArtifact captures the run as a sealed model artifact: the learned
// theory and bias plus everything a serving process needs to reproduce
// this run's coverage verdicts exactly — the effective bottom-clause and
// subsumption options, the interner symbol table, the schema
// fingerprint, and the builder's complete build log (replayed at load
// time to restore the training ground BCs; see internal/model). data
// names the training database so the server can rebind it; pass the
// zero value if the server will supply data itself.
//
// Call Covers/Evaluate before BuildArtifact, not after: post-capture
// queries that build new ground BCs would be missing from the log.
func (r *Result) BuildArtifact(task Task, data ModelDataRef) (*ModelArtifact, error) {
	if r.engine == nil {
		return nil, fmt.Errorf("autobias: result has no coverage engine; only Learn results can be saved")
	}
	bopts := r.engine.Builder().Options()
	sopts := r.engine.SubsumeOptions()
	theory := ""
	if r.Definition != nil {
		theory = r.Definition.String()
	}
	art := &ModelArtifact{
		Version:     model.Version,
		Target:      task.Target,
		TargetAttrs: append([]string(nil), task.TargetAttrs...),
		Theory:      theory,
		Bias:        r.Bias.String(),
		Bottom: model.BottomConfig{
			Strategy:    bopts.Strategy.String(),
			Depth:       bopts.Depth,
			SampleSize:  bopts.SampleSize,
			MaxLiterals: bopts.MaxLiterals,
			Seed:        bopts.Seed,
		},
		Subsume: model.SubsumeConfig{
			MaxNodes: sopts.MaxNodes,
			Restarts: sopts.Restarts,
			Seed:     sopts.Seed,
		},
		Symbols:           r.engine.Interner().Symbols(),
		SchemaFingerprint: model.Fingerprint(task.DB.Schema(), task.Target, task.TargetAttrs),
		Data:              data,
		DataVersion:       task.DB.Version(),
		BuildLog:          r.engine.Builder().BuildLog(),
		// An interrupted run consumed RNG draws its log cannot replay
		// (the abandoned build never completed), so the artifact carries
		// the anytime theory without the exact-replay guarantee.
		Degraded: r.TimedOut || r.Cancelled || r.Degraded(),
	}
	if err := art.Seal(); err != nil {
		return nil, err
	}
	return art, nil
}

// SaveModel writes the run's sealed artifact to path; see BuildArtifact.
func (r *Result) SaveModel(path string, task Task, data ModelDataRef) error {
	art, err := r.BuildArtifact(task, data)
	if err != nil {
		return err
	}
	return art.Save(path)
}

// Covers reports whether the learned definition covers the example,
// using the same ground-BC + θ-subsumption machinery as training.
func (r *Result) Covers(e Example) (bool, error) {
	return r.covers(r.Definition, e)
}

// Evaluate scores the result against held-out examples using the
// learner's own (sampled, subsumption-based) coverage — the paper's
// evaluation protocol. When the run was instrumented, the scoring is
// recorded too and Result.Metrics is refreshed.
func (r *Result) Evaluate(testPos, testNeg []Example) (Metrics, error) {
	m, err := eval.EvaluateCollect(r.metrics, r.covers, r.Definition, testPos, testNeg)
	if r.metrics != nil {
		snap := r.metrics.Snapshot()
		r.Metrics = &snap
	}
	return m, err
}

// EvaluateExact scores the result with exact Datalog semantics: each
// clause is executed as a select-project-join query over the database
// (the §5 baseline coverage method). Slower on long clauses, but free of
// the ground-BC sampling approximation; a budget-exhausted join counts
// as "not covered".
func (r *Result) EvaluateExact(testPos, testNeg []Example) (Metrics, error) {
	eng := query.New(r.db, query.Options{})
	covers := func(d *Definition, e Example) (bool, error) {
		ok, err := eng.DefinitionCovers(d, e)
		if err == query.ErrBudget {
			return false, nil
		}
		return ok, err
	}
	return eval.Evaluate(covers, r.Definition, testPos, testNeg)
}

// ExecuteClause runs one clause as a query over a database, returning up
// to limit derived head facts — what the rule predicts (unary heads).
func ExecuteClause(d *Database, c *Clause, limit int) ([]Example, error) {
	return query.New(d, query.Options{}).Bindings(c, limit, nil)
}

// BuildBias constructs the language bias a method would use, without
// learning. For MethodAutoBias it runs IND discovery and Algorithm 3 and
// also returns the type graph.
func BuildBias(task Task, opts Options) (*Bias, *TypeGraph, error) {
	b, graph, _, err := buildBiasFull(task, opts)
	return b, graph, err
}

// buildBiasFull is BuildBias keeping the INDs an induced bias was built
// from, so learning results can carry them for incremental repair.
func buildBiasFull(task Task, opts Options) (*Bias, *TypeGraph, []IND, error) {
	switch opts.method() {
	case MethodCastor:
		return bias.CastorDefault(task.DB.Schema(), task.Target, len(task.TargetAttrs)), nil, nil, nil
	case MethodNoConst:
		return bias.NoConstants(task.DB.Schema(), task.Target, len(task.TargetAttrs)), nil, nil, nil
	case MethodManual, MethodAleph:
		if task.Manual == nil {
			return nil, nil, nil, fmt.Errorf("autobias: method %s needs Task.Manual", opts.method())
		}
		return task.Manual, nil, nil, nil
	case MethodAutoBias:
		res, err := bias.Induce(task.DB, task.Target, task.TargetAttrs, examplesToTuples(task.Pos), bias.InduceOptions{
			INDs:        opts.INDs,
			ApproxError: opts.ApproxINDError,
			Threshold:   constantThreshold(opts),
			Metrics:     opts.Collector,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		return res.Bias, res.Graph, res.INDs, nil
	}
	return nil, nil, nil, fmt.Errorf("autobias: unknown method %q", opts.Method)
}

func constantThreshold(opts Options) bias.ConstantThreshold {
	if opts.ConstantThreshold <= 0 {
		return bias.DefaultConstantThreshold
	}
	return bias.ConstantThreshold{Value: opts.ConstantThreshold, Relative: true}
}

// Learn runs one learning run end to end: build (or induce) the bias,
// compile it, learn a definition, and return it with its coverage
// machinery attached.
func Learn(task Task, opts Options) (*Result, error) {
	return LearnCtx(context.Background(), task, opts)
}

// LearnCtx is Learn under a context. Cancelling ctx (or exceeding
// Options.Timeout, which bounds the learning phase) interrupts the run
// mid-primitive — inside an in-flight θ-subsumption search or
// bottom-clause construction — and returns the best theory learned so
// far with Result.TimedOut/Cancelled set and the degradation recorded in
// Result.Report. Interruption is a degraded success, not an error.
func LearnCtx(ctx context.Context, task Task, opts Options) (*Result, error) {
	mc := opts.collector()
	// The bias-induction path reads Options.Collector, so a run enabled
	// via the Metrics flag alone still lands its IND counters in mc.
	opts.Collector = mc

	biasStart := time.Now()
	b, graph, inds, err := buildBiasFull(task, opts)
	if err != nil {
		return nil, err
	}
	biasTime := time.Since(biasStart)

	compiled, err := b.Compile(task.DB.Schema(), task.Target, len(task.TargetAttrs))
	if err != nil {
		return nil, err
	}

	res := &Result{Bias: b, Graph: graph, INDs: inds, BiasTime: biasTime, db: task.DB, metrics: mc}
	start := time.Now()
	if opts.method() == MethodAleph {
		if opts.Shard != nil {
			return nil, fmt.Errorf("autobias: Options.Shard is not supported with MethodAleph (the FOIL loop does not route coverage through the engine's count path)")
		}
		l := foil.New(task.DB, compiled, foil.Options{
			Bottom:        opts.bottomOptions(),
			Subsume:       opts.subsumeOptions(),
			EvalSampleCap: opts.EvalSampleCap,
			MinPrecision:  opts.MinPrecision,
			Timeout:       opts.Timeout,
			Seed:          opts.Seed,
			Workers:       opts.Workers,
			Metrics:       mc,
		})
		if opts.PureGroundBCs {
			l.Coverage().SetPureGroundBCs(true)
		}
		def, stats, err := l.LearnCtx(ctx, task.Pos, task.Neg)
		if err != nil {
			return nil, err
		}
		res.Definition = def
		res.TimedOut = stats.TimedOut
		res.Cancelled = stats.Cancelled
		res.Report = stats.Report
		res.Clauses = stats.Clauses
		res.covers = func(d *Definition, e Example) (bool, error) {
			return l.Coverage().DefinitionCovers(d, e)
		}
		res.engine = l.Coverage()
	} else {
		l := learn.New(task.DB, compiled, learn.Options{
			Bottom:        opts.bottomOptions(),
			Subsume:       opts.subsumeOptions(),
			BeamWidth:     opts.BeamWidth,
			EvalSampleCap: opts.EvalSampleCap,
			MinPrecision:  opts.MinPrecision,
			Timeout:       opts.Timeout,
			Seed:          opts.Seed,
			Workers:       opts.Workers,
			Metrics:       mc,
			PureGroundBCs: opts.PureGroundBCs || opts.Shard != nil,
		})
		if so := opts.Shard; so != nil {
			fp := shard.EngineFingerprint(l.Coverage(),
				model.Fingerprint(task.DB.Schema(), task.Target, task.TargetAttrs), b.String())
			coord, err := shard.New(shard.Options{
				Shards:               so.shardFleet(),
				Fingerprint:          fp,
				RequestTimeout:       so.RequestTimeout,
				Retries:              so.Retries,
				HedgeDelay:           so.HedgeDelay,
				DisableLocalFallback: so.DisableLocalFallback,
				DisableBatch:         so.DisableBatch,
				MaxBatchClauses:      so.BatchClauses,
				JitterSeed:           opts.Seed,
				Metrics:              mc,
			})
			if err != nil {
				return nil, err
			}
			coord.Bind(l.Coverage())
			// Detach when the run ends: post-run queries (Covers, Evaluate)
			// resolve locally against the memo and cache, never over RPC.
			defer l.Coverage().SetTransport(nil)
			defer coord.Close()
		}
		def, stats, err := l.LearnCtx(ctx, task.Pos, task.Neg)
		if err != nil {
			return nil, err
		}
		res.Definition = def
		res.TimedOut = stats.TimedOut
		res.Cancelled = stats.Cancelled
		res.Report = stats.Report
		res.Clauses = stats.Clauses
		res.covers = func(d *Definition, e Example) (bool, error) {
			return l.Coverage().DefinitionCovers(d, e)
		}
		res.engine = l.Coverage()
	}
	res.Elapsed = time.Since(start)
	if mc != nil {
		snap := mc.Snapshot()
		res.Metrics = &snap
	}
	return res, nil
}

// NewShardWorker builds the shard-worker service for a distributed run:
// a coverage engine constructed from the same task and options as the
// coordinator's — same bias (induced or given), same effective
// bottom-clause and subsumption options, pure ground-BC provenance —
// plus the config fingerprint that proves the parity on every RPC. The
// returned worker serves POST /v1/coverage, POST /v2/coverage (the
// batched frontier protocol), GET /healthz, GET /readyz
// and GET /metrics; run it with (*ShardWorker).Serve or mount
// (*ShardWorker).Handler yourself. See cmd/shardworker for the CLI.
func NewShardWorker(task Task, opts Options, id string, wopts ShardWorkerOptions) (*ShardWorker, error) {
	if opts.method() == MethodAleph {
		return nil, fmt.Errorf("autobias: shard workers are not supported with MethodAleph")
	}
	mc := opts.collector()
	opts.Collector = mc
	b, _, err := BuildBias(task, opts)
	if err != nil {
		return nil, err
	}
	compiled, err := b.Compile(task.DB.Schema(), task.Target, len(task.TargetAttrs))
	if err != nil {
		return nil, err
	}
	l := learn.New(task.DB, compiled, learn.Options{
		Bottom:        opts.bottomOptions(),
		Subsume:       opts.subsumeOptions(),
		BeamWidth:     opts.BeamWidth,
		EvalSampleCap: opts.EvalSampleCap,
		MinPrecision:  opts.MinPrecision,
		Seed:          opts.Seed,
		Workers:       opts.Workers,
		Metrics:       mc,
		PureGroundBCs: true,
	})
	engine := l.Coverage()
	fp := shard.EngineFingerprint(engine,
		model.Fingerprint(task.DB.Schema(), task.Target, task.TargetAttrs), b.String())
	if wopts.Metrics == nil {
		wopts.Metrics = mc
	}
	return shard.NewWorker(id, engine, fp, wopts), nil
}

// DiscoverINDs runs Binder-style IND discovery over the database with
// the given approximate-error cutoff (§3.1); maxError 0 keeps only exact
// INDs.
func DiscoverINDs(d *Database, maxError float64) []IND {
	return ind.Discover(d, ind.Options{MaxError: maxError})
}

// DiscoverINDsCtx is DiscoverINDs under a context. Cancellation aborts
// discovery with ctx's error and no partial result — half-validated
// inclusion counts would admit spurious INDs.
func DiscoverINDsCtx(ctx context.Context, d *Database, maxError float64) ([]IND, error) {
	return ind.DiscoverCtx(ctx, d, ind.Options{MaxError: maxError})
}

// DiscoverINDsCollect is DiscoverINDsCtx with instrumentation: mc (nil =
// disabled) receives the candidate/validated/pruned counters, the
// error-rate histogram, and the ind.discover span.
func DiscoverINDsCollect(ctx context.Context, d *Database, maxError float64, mc *MetricsCollector) ([]IND, error) {
	return ind.DiscoverCtx(ctx, d, ind.Options{MaxError: maxError, Metrics: mc})
}

// InduceBias runs the full §3 pipeline (the paper's primary
// contribution) and returns the induced bias together with the type
// graph and the INDs it was built from.
func InduceBias(task Task, opts Options) (*Bias, *TypeGraph, []IND, error) {
	res, err := bias.Induce(task.DB, task.Target, task.TargetAttrs, examplesToTuples(task.Pos), bias.InduceOptions{
		INDs:        opts.INDs,
		ApproxError: opts.ApproxINDError,
		Threshold:   constantThreshold(opts),
		Metrics:     opts.collector(),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return res.Bias, res.Graph, res.INDs, nil
}

// RenderTypeGraph prints a type graph in the style of the paper's
// Figure 1.
func RenderTypeGraph(g *TypeGraph, task Task) string {
	return g.Render(task.DB.Schema(), task.Target, task.TargetAttrs)
}

// CrossValidate runs k-fold cross validation of one method over a task,
// as in §6: learn on each fold's training split, score on its test
// split, and average. Folds are independent learning problems over the
// shared read-only database, so up to Options.Workers of them train
// concurrently; results are identical at every worker count.
func CrossValidate(task Task, opts Options, k int) (CVResult, error) {
	return CrossValidateCtx(context.Background(), task, opts, k)
}

// CrossValidateCtx is CrossValidate under a context: cancellation
// interrupts in-flight folds (each returns and scores its partial
// theory) and prevents new folds from starting.
func CrossValidateCtx(ctx context.Context, task Task, opts Options, k int) (CVResult, error) {
	folds, err := eval.KFold(task.Pos, task.Neg, k, opts.Seed+100)
	if err != nil {
		return CVResult{}, err
	}
	trainer := func(ctx context.Context, fold eval.Fold) (*Definition, eval.CoverFunc, eval.FoldOutcome, error) {
		sub := task
		sub.Pos, sub.Neg = fold.TrainPos, fold.TrainNeg
		res, err := LearnCtx(ctx, sub, opts)
		if err != nil {
			return nil, nil, eval.FoldOutcome{}, err
		}
		out := eval.FoldOutcome{Elapsed: res.Elapsed + res.BiasTime, TimedOut: res.TimedOut, Cancelled: res.Cancelled, Clauses: res.Clauses}
		return res.Definition, res.covers, out, nil
	}
	return eval.CrossValidateCollect(ctx, folds, trainer, opts.Workers, opts.collector())
}

func examplesToTuples(examples []Example) []Tuple {
	out := make([]Tuple, len(examples))
	for i, e := range examples {
		t := make(Tuple, len(e.Terms))
		for j, term := range e.Terms {
			t[j] = term.Name
		}
		out[i] = t
	}
	return out
}
