//go:build stress

// Stress suite (ISSUE: schema-independence stress harness). Build-tagged
// so tier-1 stays fast:
//
//	go test -tags stress -run TestStress -race .
//
// STRESS_SCALE scales every workload (default 1.0 = full size, ~1M
// generated tuples); CI sets a small value on pull requests and runs
// full-size on main. The suite covers the volume axis the unit tests
// cannot: million-tuple streamed generation, the Olken/stratified
// samplers over a database two orders of magnitude beyond the golden
// scale, and the shard coordinator serving a fleet at volume.
package autobias_test

import (
	"bufio"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	autobias "repro"
	"repro/internal/bottom"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/testkit"
)

// stressScale reads the STRESS_SCALE multiplier (default 1.0).
func stressScale(t *testing.T) float64 {
	t.Helper()
	v := os.Getenv("STRESS_SCALE")
	if v == "" {
		return 1.0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f <= 0 {
		t.Fatalf("invalid STRESS_SCALE=%q: %v", v, err)
	}
	return f
}

// TestStressMillionTupleStream validates the memory-bounded generation
// path at the million-tuple mark: IMDb streamed straight to CSV files,
// then every file's line count reconciled against the writer's row
// accounting (a divergence would mean rows were silently dropped or
// duplicated on the way to disk).
func TestStressMillionTupleStream(t *testing.T) {
	mult := stressScale(t)
	// IMDb yields ~40k tuples per unit scale; 26 units crosses 1M.
	scale := 26.0 * mult
	dir := t.TempDir()

	var w *db.CSVStreamWriter
	var names []string
	_, err := datagen.GenerateTo("imdb", datagen.Config{Scale: scale, Seed: 7},
		func(s *db.Schema) (datagen.TupleSink, error) {
			names = s.Names()
			var err error
			w, err = db.NewCSVStreamWriter(dir, s)
			return w, err
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	total := w.TotalRows()
	t.Logf("streamed %d tuples across %d relations at scale %g", total, len(names), scale)
	if mult >= 1 && total < 1_000_000 {
		t.Errorf("full-scale run streamed %d tuples, want >= 1M", total)
	}

	var onDisk int64
	for _, name := range names {
		lines, err := countLines(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := lines-1, w.Rows(name); got != want {
			t.Errorf("%s.csv: %d data rows on disk, writer accounted %d", name, got, want)
		}
		onDisk += lines - 1
	}
	if onDisk != total {
		t.Errorf("%d rows on disk, writer accounted %d", onDisk, total)
	}
}

// countLines streams a file counting newlines, never holding more than
// the scanner buffer — the reconciliation itself must stay
// memory-bounded or the test would defeat its own point.
func countLines(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var n int64
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		chunk, err := r.ReadSlice('\n')
		if len(chunk) > 0 && chunk[len(chunk)-1] == '\n' {
			n++
		}
		if err != nil {
			if errors.Is(err, bufio.ErrBufferFull) {
				continue
			}
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
	}
}

// TestStressSamplersAtVolume runs the Olken-style random and the
// stratified bottom-clause samplers over an HIV database ~40x the
// golden-test scale and checks the determinism contract holds at
// volume: two builders with the same seed produce bit-identical bottom
// clauses for every probed example.
func TestStressSamplersAtVolume(t *testing.T) {
	mult := stressScale(t)
	ds, err := autobias.GenerateDataset("hiv", 4.0*mult, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hiv at scale %g: %d tuples", 4.0*mult, ds.DB.TotalTuples())
	compiled, err := ds.Manual.Compile(ds.DB.Schema(), ds.Target, len(ds.TargetAttrs))
	if err != nil {
		t.Fatal(err)
	}
	probes := ds.Pos
	if len(probes) > 15 {
		probes = probes[:15]
	}
	for _, strat := range []struct {
		name string
		s    bottom.Strategy
	}{
		{"olken-random", bottom.Random},
		{"stratified", bottom.Stratified},
	} {
		strat := strat
		t.Run(strat.name, func(t *testing.T) {
			opts := bottom.Options{Strategy: strat.s, Seed: 11}
			first := bottom.NewBuilder(ds.DB, compiled, opts)
			second := bottom.NewBuilder(ds.DB, compiled, opts)
			for i, e := range probes {
				a, err := first.Construct(e)
				if err != nil {
					t.Fatal(err)
				}
				b, err := second.Construct(e)
				if err != nil {
					t.Fatal(err)
				}
				if len(a.Body) == 0 {
					t.Errorf("probe %d: empty bottom clause", i)
				}
				if a.String() != b.String() {
					t.Errorf("probe %d: same-seed builders diverge at volume:\n--- first\n%s\n--- second\n%s",
						i, a.String(), b.String())
				}
			}
		})
	}
}

// TestStressStreamedIngest replays a million-tuple dataset through the
// ingestion subsystem in bounded batches into an initially empty
// database and requires the destination's index and statistics digest
// to be byte-identical to the cold-loaded reference — incremental index
// maintenance at volume must converge to exactly the state a bulk load
// produces, with the data version counting the committed batches.
func TestStressStreamedIngest(t *testing.T) {
	mult := stressScale(t)
	scale := 26.0 * mult // IMDb yields ~40k tuples per unit scale.
	ds, err := autobias.GenerateDataset("imdb", scale, 7)
	if err != nil {
		t.Fatal(err)
	}
	cold := ds.DB
	cold.BuildIndexes()
	total := cold.TotalTuples()
	t.Logf("imdb at scale %g: %d tuples", scale, total)
	if mult >= 1 && total < 1_000_000 {
		t.Errorf("full-scale run generated %d tuples, want >= 1M", total)
	}

	live := db.New(cold.Schema())
	ing := autobias.NewIngestor(live, autobias.NewMetricsCollector())
	ctx := context.Background()
	const batchSize = 1 << 16
	var batch []autobias.IngestMutation
	var batches uint64
	flush := func() {
		if len(batch) == 0 {
			return
		}
		commit, err := ing.Apply(ctx, autobias.IngestBatch{Mutations: batch})
		if err != nil {
			t.Fatal(err)
		}
		batches++
		if commit.Version != batches || commit.Inserted != len(batch) {
			t.Fatalf("batch %d: unexpected commit %+v", batches, commit)
		}
		batch = batch[:0]
	}
	for _, name := range cold.Schema().Names() {
		for _, row := range cold.Relation(name).Snapshot() {
			batch = append(batch, autobias.IngestMutation{Op: autobias.IngestInsert, Relation: name, Tuple: row})
			if len(batch) == batchSize {
				flush()
			}
		}
	}
	flush()
	t.Logf("applied %d tuples across %d batches", total, batches)

	if got, want := live.TotalTuples(), total; got != want {
		t.Errorf("streamed database holds %d tuples, cold load holds %d", got, want)
	}
	if live.Version() != batches {
		t.Errorf("data version %d after %d committed batches", live.Version(), batches)
	}
	if got, want := live.IndexDigest(), cold.IndexDigest(); got != want {
		t.Errorf("streamed index/stats digest diverges from cold load:\n--- streamed\n%s\n--- cold\n%s", got, want)
	}
}

// TestStressShardCoordinator drives the shard coordinator against an
// in-process fleet of four single-replica workers over a scaled-up FLT
// dataset and requires the distributed theory to be bit-identical to
// the pure-mode local reference — the determinism contract under
// volume, not just under the unit-test toy sizes.
func TestStressShardCoordinator(t *testing.T) {
	mult := stressScale(t)
	ds, err := autobias.GenerateDataset("flt", 3.0*mult, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flt at scale %g: %d tuples", 3.0*mult, ds.DB.TotalTuples())
	task := autobias.TaskFromDataset(ds)
	if len(task.Pos) > 12 {
		task.Pos = task.Pos[:12]
	}
	if len(task.Neg) > 60 {
		task.Neg = task.Neg[:60]
	}
	opts := autobias.Options{
		Method:        autobias.MethodManual,
		Seed:          1,
		PureGroundBCs: true,
	}
	ctx := context.Background()
	local, err := testkit.Run(ctx, task, opts, "local(pure)")
	if err != nil {
		t.Fatal(err)
	}
	if local.Clauses == 0 {
		t.Fatal("local reference learned nothing; the comparison is vacuous")
	}

	fleet, err := testkit.StartShardFleet(task, opts, [][]string{{"s0"}, {"s1"}, {"s2"}, {"s3"}})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	shOpts := opts
	shOpts.Shard = &autobias.ShardOptions{Workers: fleet.URLs}
	sharded, err := testkit.Run(ctx, task, shOpts, "sharded")
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Theory != local.Theory {
		t.Errorf("sharded theory diverges from pure local reference:\n--- local\n%s\n--- sharded\n%s",
			local.Theory, sharded.Theory)
	}
}
