// Differential tests: the same learning problem must produce the same
// theory and the same deterministic instrumentation under every
// execution strategy — sequential, parallel, and cancelled-then-resumed.
// This file is an external test package because it drives the facade
// through internal/testkit, which itself imports the facade.
package autobias_test

import (
	"context"
	"testing"

	autobias "repro"
	"repro/internal/testkit"
)

// smallTask is a learning problem sized for the cancel-resume harness:
// under 10 positives (so the learner's minimum-criterion threshold is
// identical on the resumed leg, which sees fewer positives) and small
// enough that example sampling never consumes the learner's RNG (the
// resumed leg restarts the RNG from the seed, so any consumed randomness
// would break bit-identical resume).
func smallTask(t *testing.T) autobias.Task {
	t.Helper()
	ds, err := autobias.GenerateDataset("uw", 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	task := autobias.TaskFromDataset(ds)
	task.Pos = task.Pos[:8]
	return task
}

// TestDifferentialWorkers is the acceptance check for the metrics
// determinism contract: at 1, 4 and 8 workers the learned theory is
// bit-identical and every deterministic counter and histogram agrees
// exactly. Gauges (coverage.tests, subsume.*, cache splits, per-worker
// utilization) are excluded by construction — the parallel engine's
// early exit legitimately changes which subsumption tests execute.
func TestDifferentialWorkers(t *testing.T) {
	task := smallTask(t)
	opts := autobias.Options{Method: autobias.MethodAutoBias, Seed: 1}
	legs, diffs, err := testkit.Differential(context.Background(), task, opts, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		t.Error(d)
	}
	if legs[0].Clauses == 0 {
		t.Fatal("differential task learned no clauses; the comparison is vacuous")
	}
}

// TestDifferentialCancelResume verifies the anytime contract: a run
// cancelled deterministically mid-flight (fault-injected
// context.Canceled at the nth bottom-clause construction), resumed over
// the positives its partial theory left uncovered, reproduces the
// uninterrupted theory bit for bit. The cut point is derived from a
// probe run so the test stays meaningful if the learner's work profile
// shifts: it scans a few cut fractions and requires at least one to land
// mid-run (partial theory non-empty, run actually interrupted).
func TestDifferentialCancelResume(t *testing.T) {
	task := smallTask(t)
	opts := autobias.Options{Method: autobias.MethodAutoBias, Seed: 1, Workers: 1}
	ctx := context.Background()

	probe, err := testkit.Run(ctx, task, opts, "probe")
	if err != nil {
		t.Fatal(err)
	}
	total := probe.Snapshot.Counters["bottom.constructions"]
	if probe.Clauses < 2 || total < 4 {
		t.Fatalf("probe run too small to cut meaningfully: %d clauses, %d constructions", probe.Clauses, total)
	}

	// Almost all constructions happen inside the first clause's beam
	// search (negative scoring builds the whole BC cache); later clauses
	// only construct their own seed. Scan cut points from the tail of the
	// run backwards to find one that lands between kept clauses.
	ran := false
	for _, after := range []int{int(total), int(total) - 1, int(total) - 2, int(total) - 4, int(total) / 2} {
		rep, err := testkit.CancelResume(ctx, task, opts, after, &probe)
		if err != nil {
			// This cut landed before the first kept clause or after the run's
			// work ended; try the next one.
			t.Logf("cancelAfter=%d: %v", after, err)
			continue
		}
		ran = true
		for _, d := range rep.Diffs {
			t.Errorf("cancelAfter=%d: %s", after, d)
		}
		if !rep.Partial.Cancelled || rep.Partial.TimedOut {
			t.Errorf("cancelAfter=%d: partial leg flags wrong: cancelled=%v timedOut=%v",
				after, rep.Partial.Cancelled, rep.Partial.TimedOut)
		}
	}
	if !ran {
		t.Fatal("no cut fraction produced a mid-run cancellation; adjust the task or fractions")
	}
}
