// Quickstart: learn advisedBy over a small UW-style database built by
// hand with the public API — the paper's running example (§1, Table 4)
// scaled up just enough to learn from.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	autobias "repro"
)

func main() {
	// 1. Define the schema and load tuples (Table 2 / Table 4 style).
	schema := autobias.NewSchema()
	schema.MustAdd("student", "stud")
	schema.MustAdd("professor", "prof")
	schema.MustAdd("inPhase", "stud", "phase")
	schema.MustAdd("publication", "title", "person")
	db := autobias.NewDatabase(schema)

	phases := []string{"pre_quals", "post_quals", "post_generals"}
	var pos, neg []autobias.Example
	for i := 0; i < 24; i++ {
		stud := fmt.Sprintf("stud_%02d", i)
		prof := fmt.Sprintf("prof_%02d", i)
		db.MustInsert("student", stud)
		db.MustInsert("professor", prof)
		db.MustInsert("inPhase", stud, phases[i%3])

		ex := fmt.Sprintf("advisedBy(%s,%s)", stud, prof)
		if i%3 != 2 {
			// Advised pairs co-author a publication.
			title := fmt.Sprintf("pub_%02d", i)
			db.MustInsert("publication", title, stud)
			db.MustInsert("publication", title, prof)
			e, err := autobias.ParseExample(ex)
			if err != nil {
				log.Fatal(err)
			}
			pos = append(pos, e)
		} else {
			// Unadvised pairs publish solo work only.
			db.MustInsert("publication", fmt.Sprintf("solo_s%02d", i), stud)
			db.MustInsert("publication", fmt.Sprintf("solo_p%02d", i), prof)
			e, err := autobias.ParseExample(ex)
			if err != nil {
				log.Fatal(err)
			}
			neg = append(neg, e)
		}
	}

	task := autobias.Task{
		DB:          db,
		Target:      "advisedBy",
		TargetAttrs: []string{"stud", "prof"},
		Pos:         pos,
		Neg:         neg,
	}

	// 2. Induce the language bias automatically (§3) and inspect it.
	b, graph, inds, err := autobias.InduceBias(task, autobias.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d INDs; induced %d predicate + %d mode definitions\n",
		len(inds), len(b.Predicates), len(b.Modes))
	fmt.Println("\ntype graph (cf. paper Figure 1):")
	fmt.Println(autobias.RenderTypeGraph(graph, task))

	// 3. Learn a Horn definition with the induced bias.
	res, err := autobias.Learn(task, autobias.Options{Method: autobias.MethodAutoBias, Depth: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learned definition:")
	fmt.Println(res.Definition)

	// 4. Score it.
	m, err := res.Evaluate(task.Pos, task.Neg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraining metrics: precision=%.2f recall=%.2f f1=%.2f (%v to learn)\n",
		m.Precision, m.Recall, m.F1, res.Elapsed)
}
