// Flights: the paper's FLT workload (§6.1) — learn which flights share a
// source and pass through a given location. The concept needs two
// constants (the hub and the via airport), which is exactly what the
// No-constants baseline cannot express: this example contrasts AutoBias
// against that baseline, reproducing the FLT row of Table 5 in
// miniature.
//
// Run with: go run ./examples/flights
package main

import (
	"fmt"
	"log"
	"time"

	autobias "repro"
)

func main() {
	ds, err := autobias.GenerateDataset("flt", 0.15, 7)
	if err != nil {
		log.Fatal(err)
	}
	task := autobias.TaskFromDataset(ds)
	fmt.Printf("FLT: %d tuples, %d positive / %d negative flights\n",
		task.DB.TotalTuples(), len(task.Pos), len(task.Neg))
	fmt.Printf("generating concept: %s\n\n", ds.TrueDefinition)

	for _, method := range []autobias.Method{autobias.MethodNoConst, autobias.MethodAutoBias} {
		res, err := autobias.Learn(task, autobias.Options{
			Method:  method,
			Timeout: 2 * time.Minute,
			Seed:    7,
		})
		if err != nil {
			log.Fatal(err)
		}
		m, err := res.Evaluate(task.Pos, task.Neg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== method %s (bias: %d defs, learned in %v)\n",
			method, res.Bias.Size(), res.Elapsed.Round(time.Millisecond))
		if res.Definition.Len() == 0 {
			fmt.Println("   no definition learned — the bias cannot express the concept")
		} else {
			fmt.Println(res.Definition)
		}
		fmt.Printf("   precision=%.2f recall=%.2f f1=%.2f\n\n", m.Precision, m.Recall, m.F1)
	}
	fmt.Println("Without constants the hub/via pattern is inexpressible; AutoBias")
	fmt.Println("finds it because the constant-threshold lets airport codes be #-modes.")
}
