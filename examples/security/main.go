// Security: the paper's SYS workload (§6.1) — learn the file-access
// patterns of malicious processes from a single wide event relation,
// provided in the paper by a private software company that chose
// relational learning for the interpretability of its results. This
// example shows that interpretability: the learned definition is a
// readable Datalog rule a security analyst can audit.
//
// Run with: go run ./examples/security
package main

import (
	"fmt"
	"log"
	"time"

	autobias "repro"
)

func main() {
	ds, err := autobias.GenerateDataset("sys", 0.25, 11)
	if err != nil {
		log.Fatal(err)
	}
	task := autobias.TaskFromDataset(ds)
	fmt.Printf("SYS: %d events in one relation, %d malicious / %d benign processes\n",
		task.DB.TotalTuples(), len(task.Pos), len(task.Neg))

	// Compare the expert bias (the paper's security analysts spent long
	// sessions finding which columns matter) against AutoBias.
	for _, method := range []autobias.Method{autobias.MethodManual, autobias.MethodAutoBias} {
		res, err := autobias.Learn(task, autobias.Options{
			Method:  method,
			Timeout: 2 * time.Minute,
			Seed:    11,
		})
		if err != nil {
			log.Fatal(err)
		}
		m, err := res.Evaluate(task.Pos, task.Neg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== method %s (bias: %d defs, learned in %v)\n",
			method, res.Bias.Size(), res.Elapsed.Round(time.Millisecond))
		fmt.Println("learned rule(s) an analyst can read:")
		if res.Definition.Len() == 0 {
			fmt.Println("   (none)")
		} else {
			fmt.Println(res.Definition)
		}
		fmt.Printf("precision=%.2f recall=%.2f f1=%.2f\n", m.Precision, m.Recall, m.F1)
	}
}
