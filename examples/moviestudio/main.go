// Moviestudio: the paper's IMDb workload (§6.1) — learn dramaDirector
// over a 46-relation schema. With this many relations, hand-writing a
// language bias took the paper's expert 112 definitions and several
// trial-and-error rounds; this example shows AutoBias doing it
// automatically, printing the §6.2 comparison of bias sizes before
// learning.
//
// Run with: go run ./examples/moviestudio
package main

import (
	"fmt"
	"log"
	"time"

	autobias "repro"
)

func main() {
	ds, err := autobias.GenerateDataset("imdb", 0.15, 3)
	if err != nil {
		log.Fatal(err)
	}
	task := autobias.TaskFromDataset(ds)
	fmt.Printf("IMDb: %d relations, %d tuples, %d / %d examples\n",
		task.DB.Schema().Len(), task.DB.TotalTuples(), len(task.Pos), len(task.Neg))

	// §6.2: compare the expert's bias with the induced one.
	start := time.Now()
	induced, _, inds, err := autobias.InduceBias(task, autobias.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expert bias: %d definitions (weeks of trial and error in the paper)\n", task.Manual.Size())
	fmt.Printf("AutoBias:    %d definitions from %d INDs, in %v — %.0f%% more than manual\n",
		induced.Size(), len(inds), time.Since(start).Round(time.Millisecond),
		100*(float64(induced.Size())/float64(task.Manual.Size())-1))

	res, err := autobias.Learn(task, autobias.Options{
		Method:  autobias.MethodAutoBias,
		Timeout: 3 * time.Minute,
		Seed:    3,
	})
	if err != nil {
		log.Fatal(err)
	}
	m, err := res.Evaluate(task.Pos, task.Neg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlearned definition:")
	fmt.Println(res.Definition)
	fmt.Printf("precision=%.2f recall=%.2f f1=%.2f (%v)\n",
		m.Precision, m.Recall, m.F1, res.Elapsed.Round(time.Millisecond))
}
